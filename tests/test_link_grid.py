"""Cross-point grids, the analytic fast path, and shared draw pools.

The contract under test, end to end: fixed-budget results are
bit-identical across cross-point vs per-point execution, batch shapes,
worker counts, and shared-memory vs locally regenerated draws — and
``stop_reason="analytic"`` records flow through engine, link, store,
report and CLI without losing their meaning.
"""

import numpy as np
import pytest

from repro.campaign import make_store, shm, summary_lines
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.core.link import LinkSimulator, run_link_grid
from repro.core.mc import analytic_result, run_grid_trials
from repro.errors import ConfigurationError

SNRS = [4.0, 10.0]
PHYS = ["ofdm-6", "ofdm-24"]


def _counts(results):
    return [(r.n_packets, r.n_packet_errors, r.n_bit_errors)
            for r in results]


class TestRunGridTrials:
    def _events(self):
        events = np.zeros((3, 30), dtype=bool)
        events[0, :3] = True
        events[1, 5:20] = True
        return events

    def _grid_fn(self, events):
        def fn(lo, hi, points):
            return {"per": np.array([events[int(i), lo:hi].sum()
                                     for i in points]),
                    "bits": np.array([(hi - lo) * 4 for _ in points])}
        return fn

    def test_budget_counts(self):
        rs = run_grid_trials(self._grid_fn(self._events()), 30, 3,
                             target="per", batch_size=7)
        assert [r.n_events for r in rs] == [3, 15, 0]
        assert all(r.n_trials == 30 for r in rs)
        assert all(r.stop_reason == "budget" for r in rs)
        assert all(r.totals["bits"] == 120 for r in rs)

    def test_batch_size_invariance(self):
        fn = self._grid_fn(self._events())
        a = run_grid_trials(fn, 30, 3, target="per", batch_size=1)
        b = run_grid_trials(fn, 30, 3, target="per", batch_size=30)
        assert [(r.n_events, r.n_trials, r.estimate) for r in a] == \
               [(r.n_events, r.n_trials, r.estimate) for r in b]

    def test_analytic_points_skipped(self):
        calls = []
        fn = self._grid_fn(self._events())

        def spy(lo, hi, points):
            calls.append(list(points))
            return fn(lo, hi, points)

        rs = run_grid_trials(spy, 30, 3, target="per", batch_size=30,
                             analytic={1: 1e-8})
        assert all(1 not in pts for pts in calls)
        assert rs[1].stop_reason == "analytic"
        assert rs[1].n_trials == 0
        assert rs[1].estimate == 1e-8
        assert rs[0].stop_reason == "budget"

    def test_all_analytic_runs_nothing(self):
        def boom(lo, hi, points):
            raise AssertionError("no MC should run")

        rs = run_grid_trials(boom, 10, 2, target="per",
                             analytic={0: 0.0, 1: 1e-9})
        assert [r.stop_reason for r in rs] == ["analytic", "analytic"]

    def test_validation(self):
        fn = self._grid_fn(self._events())
        with pytest.raises(ConfigurationError, match="n_points"):
            run_grid_trials(fn, 10, 0, target="per")
        with pytest.raises(ConfigurationError, match="n_trials"):
            run_grid_trials(fn, 0, 2, target="per")
        with pytest.raises(ConfigurationError, match="analytic point"):
            run_grid_trials(fn, 10, 2, target="per", analytic={5: 0.1})
        with pytest.raises(ConfigurationError, match="target metric"):
            run_grid_trials(lambda lo, hi, p: {"other": np.zeros(len(p))},
                            10, 2, target="per")
        with pytest.raises(ConfigurationError, match="one value per"):
            run_grid_trials(lambda lo, hi, p: {"per": np.zeros(len(p) + 1)},
                            10, 2, target="per")

    def test_analytic_result_validation(self):
        r = analytic_result(1e-7, target="packet_error")
        assert r.stop_reason == "analytic"
        assert r.n_trials == 0 and r.n_events == 0
        assert r.ci() == (0.0, 1e-7)
        with pytest.raises(ConfigurationError):
            analytic_result(1.5, target="packet_error")
        with pytest.raises(ConfigurationError):
            analytic_result(-0.1, target="packet_error")


class TestCrossPointIdentity:
    def test_awgn_multi_phy(self):
        a = run_link_grid(PHYS, SNRS, n_packets=6, payload_bytes=40,
                          rng=7, cross_point=True)
        b = run_link_grid(PHYS, SNRS, n_packets=6, payload_bytes=40,
                          rng=7, cross_point=False)
        assert _counts(sum(a, [])) == _counts(sum(b, []))

    def test_rayleigh(self):
        a = run_link_grid("ofdm-12", [8.0, 20.0], n_packets=6,
                          payload_bytes=30, channel="rayleigh", rng=5)
        b = run_link_grid("ofdm-12", [8.0, 20.0], n_packets=6,
                          payload_bytes=30, channel="rayleigh", rng=5,
                          cross_point=False)
        assert _counts(a[0]) == _counts(b[0])

    def test_batch_size_invariance(self):
        a = run_link_grid("ofdm-24", SNRS, n_packets=7, payload_bytes=30,
                          rng=3, batch_size=2)
        b = run_link_grid("ofdm-24", SNRS, n_packets=7, payload_bytes=30,
                          rng=3, batch_size=50)
        assert _counts(a[0]) == _counts(b[0])

    def test_simulator_method_matches_function(self):
        sim = LinkSimulator("ofdm-24", "awgn", rng=9)
        via_method = sim.run_grid(SNRS, n_packets=5, payload_bytes=30)
        via_fn = run_link_grid("ofdm-24", SNRS, n_packets=5,
                               payload_bytes=30, rng=9)[0]
        assert _counts(via_method) == _counts(via_fn)

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError, match="OFDM"):
            run_link_grid("dsss-1", SNRS, n_packets=2, payload_bytes=20,
                          rng=0)
        with pytest.raises(ConfigurationError, match="channel"):
            run_link_grid("ofdm-6", SNRS, n_packets=2, payload_bytes=20,
                          channel="tgn-B", rng=0)
        with pytest.raises(ConfigurationError, match="at least one"):
            run_link_grid([], SNRS, rng=0)
        with pytest.raises(ConfigurationError, match="analytic_floor"):
            run_link_grid("ofdm-6", SNRS, n_packets=2, payload_bytes=20,
                          analytic_floor=2.0, rng=0)


class TestAnalyticFastPath:
    def test_grid_flags_high_snr_points(self):
        rows = run_link_grid("ofdm-6", [4.0, 28.0], n_packets=5,
                             payload_bytes=40, rng=7,
                             analytic_floor=1e-6)
        for r in rows[0]:
            assert r.analytic
            assert r.mc.stop_reason == "analytic"
            assert r.n_packets == 0
            assert 0.0 <= r.per <= 1e-6
            lo, hi = r.per_ci()
            assert (lo, hi) == (0.0, r.per)
            assert r.extras["analytic"]["method"] == "union-bound"
            assert r.goodput_mbps == pytest.approx(
                r.rate_mbps * (1.0 - r.per))

    def test_low_floor_keeps_mc(self):
        rows = run_link_grid("ofdm-54", [2.0], n_packets=4,
                             payload_bytes=40, rng=7,
                             analytic_floor=1e-12)
        r = rows[0][0]
        assert not r.analytic
        assert r.n_packets == 4

    def test_run_short_circuit(self):
        sim = LinkSimulator("ofdm-6", rng=3)
        r = sim.run(28.0, n_packets=10, payload_bytes=40,
                    analytic_floor=1e-6)
        assert r.analytic and r.mc.n_trials == 0
        assert r.ber == r.extras["analytic"]["ber"]

    def test_run_floor_not_met_falls_through(self):
        sim = LinkSimulator("ofdm-6", rng=3)
        r = sim.run(-2.0, n_packets=4, payload_bytes=40,
                    analytic_floor=1e-6)
        assert not r.analytic
        assert r.mc.n_trials == 4

    def test_non_ofdm_has_no_bounds(self):
        assert LinkSimulator("dsss-1", rng=0).analytic_bounds(30.0) is None
        assert LinkSimulator("ofdm-6", "rayleigh",
                             rng=0).analytic_bounds(30.0) is None

    def test_waterfall_passthrough(self):
        sim = LinkSimulator("ofdm-6", rng=3)
        results = sim.waterfall([28.0, 30.0], n_packets=4,
                                payload_bytes=40, analytic_floor=1e-6)
        assert all(r.analytic for r in results)

    def test_identity_holds_with_floor(self):
        kwargs = dict(n_packets=5, payload_bytes=40, rng=7,
                      analytic_floor=1e-9)
        a = run_link_grid(PHYS, [2.0, 28.0], cross_point=True, **kwargs)
        b = run_link_grid(PHYS, [2.0, 28.0], cross_point=False, **kwargs)
        for ra, rb in zip(sum(a, []), sum(b, [])):
            assert ra.mc.stop_reason == rb.mc.stop_reason
            assert (ra.n_packets, ra.n_packet_errors, ra.n_bit_errors) == \
                   (rb.n_packets, rb.n_packet_errors, rb.n_bit_errors)


class TestSharedDrawPool:
    def test_pool_matches_local_regeneration(self):
        seed = 42
        plan = {"draw_seed": seed, "n_trials": 6, "payload_bytes": 30,
                "n_max": LinkSimulator("ofdm-6",
                                       rng=0)._phy.n_samples(30),
                "channel": "awgn"}
        pool = shm.SharedDrawPool.create(**plan)
        try:
            with_pool = run_link_grid(PHYS, SNRS, n_packets=6,
                                      payload_bytes=30, rng=seed,
                                      draw_pool=pool)
            without = run_link_grid(PHYS, SNRS, n_packets=6,
                                    payload_bytes=30, rng=seed)
            assert _counts(sum(with_pool, [])) == _counts(sum(without, []))
        finally:
            pool.destroy()

    def test_mismatched_pool_falls_back(self):
        pool = shm.SharedDrawPool.create(1, 4, 30, 64)
        try:
            # Different rng seed -> different entropy; pool must be
            # ignored, not misapplied.
            rows = run_link_grid("ofdm-24", [10.0], n_packets=4,
                                 payload_bytes=30, rng=999,
                                 draw_pool=pool)
            plain = run_link_grid("ofdm-24", [10.0], n_packets=4,
                                  payload_bytes=30, rng=999)
            assert _counts(rows[0]) == _counts(plain[0])
        finally:
            pool.destroy()

    def test_attach_roundtrip(self):
        pool = shm.SharedDrawPool.create(7, 3, 20, 32)
        try:
            attached = shm.SharedDrawPool.attach(pool.meta)
            pa, ha, na = pool.arrays()
            ab, hb, nb = attached.arrays()
            np.testing.assert_array_equal(pa, ab)
            np.testing.assert_array_equal(ha, hb)
            np.testing.assert_array_equal(na, nb)
            attached.close()
        finally:
            pool.destroy()

    def test_covers(self):
        pool = shm.SharedDrawPool.create(7, 5, 20, 32)
        try:
            entropy = shm.pool_entropy(7)
            assert pool.covers(entropy, 5, 20, 32, "awgn")
            assert pool.covers(entropy, 3, 20, 16, "awgn")  # prefixes
            assert not pool.covers(entropy + 1, 5, 20, 32, "awgn")
            assert not pool.covers(entropy, 6, 20, 32, "awgn")
            assert not pool.covers(entropy, 5, 21, 32, "awgn")
            assert not pool.covers(entropy, 5, 20, 32, "rayleigh")
        finally:
            pool.destroy()

    def test_create_validation(self):
        with pytest.raises(ConfigurationError):
            shm.SharedDrawPool.create(1, 0, 10, 10)
        with pytest.raises(ConfigurationError):
            shm.SharedDrawPool.create(1, 4, 10, 10, channel="tgn-B")
        with pytest.raises(ConfigurationError, match="cap"):
            shm.SharedDrawPool.create(1, 10 ** 6, 1500, 10 ** 5)


def _grid_spec(name, backend, draw_seed=99, floor=None):
    fixed = {"snrs": [4.0, 28.0], "n_packets": 4, "payload_bytes": 30,
             "draw_seed": draw_seed}
    if floor is not None:
        fixed["analytic_floor"] = floor
    return CampaignSpec(name=name, kind="link-grid", base_seed=11,
                        factors={"phy": ["ofdm-6", "ofdm-24"]},
                        fixed=fixed, backend=backend)


class TestLinkGridCampaign:
    def test_plan_pool(self):
        spec = _grid_spec("p1", "local-queue")
        todo = [(str(i), pt) for i, pt in enumerate(spec.expand())]
        plan = shm.plan_pool(spec, todo)
        assert plan is not None
        assert plan["n_trials"] == 4 and plan["payload_bytes"] == 30

    def test_plan_pool_requires_common_seed(self):
        spec = _grid_spec("p2", "local-queue")
        todo = [(str(i), pt) for i, pt in enumerate(spec.expand())]
        todo[0][1].params.pop("draw_seed")
        assert shm.plan_pool(spec, todo) is None

    def test_queue_shm_matches_inline(self):
        r1 = run_campaign(_grid_spec("q1", "local-queue"), workers=2)
        r2 = run_campaign(_grid_spec("q2", "pool"), workers=1)
        assert r1.extras["queue"]["draw_pool"] is True
        for a, b in zip(r1.records, r2.records):
            assert a["metrics"] == b["metrics"]

    def test_report_folds_stop_reasons(self):
        result = run_campaign(_grid_spec("q3", "pool", floor=1e-6),
                              workers=1)
        lines = "\n".join(summary_lines(result.records, name="q3"))
        assert "analytic" in lines


class TestAnalyticStoreRoundTrip:
    def _link_spec(self, name):
        return CampaignSpec(
            name=name, kind="link", base_seed=5,
            factors={"snr_db": [-2.0, 28.0]},
            fixed={"phy": "ofdm-6", "n_packets": 4, "payload_bytes": 30,
                   "analytic_floor": 1e-6})

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_round_trip(self, tmp_path, backend):
        store = make_store(str(tmp_path / "results"), backend)
        try:
            run_campaign(self._link_spec(f"an-{backend}"), store=store)
            records = list(store.iter_records(f"an-{backend}"))
        finally:
            store.close()
        assert len(records) == 2
        by_snr = {r["params"]["snr_db"]: r for r in records}
        low, high = by_snr[-2.0], by_snr[28.0]
        assert high["metrics"]["stop_reason"] == "analytic"
        assert high["metrics"]["n_trials"] == 0
        assert high["metrics"]["per_ci_low"] == 0.0
        assert low["metrics"]["stop_reason"] == "budget"
        assert low["metrics"]["n_trials"] == 4
        # Summary folds the analytic point into the reasons line and
        # the trial count sum counts only real packets.
        text = "\n".join(summary_lines(records, name="x"))
        assert "analytic" in text and "budget" in text

    def test_cli_show_and_report(self, tmp_path, capsys):
        from repro.cli import main

        results = str(tmp_path / "results")
        store = make_store(results, "jsonl")
        try:
            run_campaign(self._link_spec("an-cli"), store=store)
        finally:
            store.close()
        assert main(["campaign", "show", "an-cli",
                     "--results", results]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert main(["campaign", "report", "an-cli", "--results", results,
                     "--value", "per", "--rows", "snr_db"]) == 0
        assert "per" in capsys.readouterr().out
