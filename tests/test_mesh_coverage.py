"""Tests for mesh coverage analysis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mesh.coverage import (
    coverage_area_m2,
    coverage_fraction,
    single_ap_radius_m,
)
from repro.mesh.topology import grid_positions


class TestSingleApRadius:
    def test_radius_positive(self):
        assert single_ap_radius_m() > 10.0

    def test_higher_rate_smaller_radius(self):
        assert single_ap_radius_m(54.0) < single_ap_radius_m(6.0)

    def test_impossible_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            single_ap_radius_m(100.0, standard="802.11a")


class TestCoverage:
    AREA = 240.0

    def test_mesh_beats_single_ap(self, rng_factory):
        """The paper: mesh 'dramatically increases the area served'."""
        single = coverage_fraction(
            np.array([[120.0, 120.0]]), self.AREA, rng=rng_factory(1)
        )
        # 3x3 grid, 55 m spacing: inside the ~62 m mesh-link range, so the
        # whole mesh reaches the portal.
        mesh = coverage_fraction(
            grid_positions(3, 55.0) + 65.0, self.AREA, rng=rng_factory(1)
        )
        assert mesh > single * 1.5

    def test_fraction_bounded(self, rng_factory):
        frac = coverage_fraction(np.array([[0.0, 0.0]]), self.AREA,
                                 rng=rng_factory(2))
        assert 0.0 <= frac <= 1.0

    def test_portal_reachability_matters(self, rng_factory):
        """An island mesh point (unreachable from the portal) adds nothing."""
        connected = coverage_fraction(
            np.array([[60.0, 60.0], [110.0, 60.0]]), self.AREA,
            rng=rng_factory(3),
        )
        island = coverage_fraction(
            np.array([[60.0, 60.0], [5000.0, 60.0]]), self.AREA,
            rng=rng_factory(3),
        )
        lone = coverage_fraction(
            np.array([[60.0, 60.0]]), self.AREA, rng=rng_factory(3)
        )
        assert island == pytest.approx(lone, abs=0.02)
        assert connected > island

    def test_high_rate_coverage_smaller(self, rng_factory):
        pos = np.array([[120.0, 120.0]])
        low = coverage_fraction(pos, self.AREA, min_rate_mbps=6.0,
                                rng=rng_factory(4))
        high = coverage_fraction(pos, self.AREA, min_rate_mbps=54.0,
                                 rng=rng_factory(4))
        assert high < low

    def test_area_scales_fraction(self, rng_factory):
        pos = np.array([[120.0, 120.0]])
        frac = coverage_fraction(pos, self.AREA, rng=rng_factory(5))
        area = coverage_area_m2(pos, self.AREA, rng=rng_factory(5))
        assert area == pytest.approx(frac * self.AREA ** 2, rel=0.01)

    def test_bad_positions_rejected(self, rng_factory):
        with pytest.raises(ConfigurationError):
            coverage_fraction(np.zeros(3), 100.0, rng=rng_factory(6))

    def test_vectorized_identical_to_scalar_loop(self, rng_factory):
        """The distance-matrix path must reproduce the seed-era
        per-sample scalar loop bit for bit at the same seed."""
        from repro.analysis.linkbudget import LinkBudget
        from repro.standards.registry import get_standard

        positions = grid_positions(2, 60.0) + 40.0
        n_samples, min_rate = 500, 6.0
        vec = coverage_fraction(positions, self.AREA,
                                min_rate_mbps=min_rate,
                                n_samples=n_samples, rng=rng_factory(31))

        # Inline seed-era reference: every mesh point here reaches the
        # portal (55 m links), so reachability pruning is a no-op.
        budget = LinkBudget()
        std = get_standard("802.11a")
        rng = rng_factory(31)
        points = rng.uniform(0.0, self.AREA, size=(n_samples, 2))
        covered = 0
        for p in points:
            d = np.sqrt(((positions - p) ** 2).sum(axis=1))
            snr = budget.snr_at(max(float(d.min()), 0.1))
            entry = std.rate_at_snr(snr)
            if entry is not None and entry.rate_mbps >= min_rate:
                covered += 1
        assert vec == covered / n_samples
