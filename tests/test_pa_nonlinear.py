"""Tests for the Rapp PA model and EVM machinery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.ofdm import OfdmPhy
from repro.power.pa_nonlinear import (
    RappPa,
    backoff_for_rate,
    error_vector_magnitude,
    evm_db,
    max_rate_for_evm,
)


@pytest.fixture(scope="module")
def ofdm_wave():
    rng = np.random.default_rng(61)
    return OfdmPhy(54).transmit(
        bytes(rng.integers(0, 256, 200, dtype=np.uint8).tolist())
    )


class TestRappModel:
    def test_linear_at_small_signal(self):
        pa = RappPa(saturation_amplitude=1.0)
        a = np.array([0.01, 0.05])
        assert np.allclose(pa.am_am(a), a, rtol=1e-3)

    def test_saturates_at_large_signal(self):
        pa = RappPa(saturation_amplitude=1.0)
        assert pa.am_am(np.array([100.0]))[0] <= 1.0

    def test_monotone(self):
        pa = RappPa()
        out = pa.am_am(np.linspace(0, 5, 50))
        assert np.all(np.diff(out) >= 0)

    def test_sharper_knee_with_higher_p(self):
        soft = RappPa(smoothness=1.0).am_am(np.array([1.0]))[0]
        hard = RappPa(smoothness=10.0).am_am(np.array([1.0]))[0]
        assert hard > soft

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RappPa(saturation_amplitude=0.0)


class TestEvm:
    def test_zero_for_identical(self, ofdm_wave):
        assert error_vector_magnitude(ofdm_wave, ofdm_wave) < 1e-9

    def test_gain_invariant(self, ofdm_wave):
        assert error_vector_magnitude(
            ofdm_wave, 3.3 * np.exp(1j) * ofdm_wave
        ) < 1e-9

    def test_improves_with_backoff(self, ofdm_wave):
        pa = RappPa()
        evms = [evm_db(ofdm_wave, pa.amplify(ofdm_wave, backoff_db=b))
                for b in (0.0, 4.0, 8.0)]
        assert evms[0] > evms[1] > evms[2]

    def test_length_mismatch_rejected(self, ofdm_wave):
        with pytest.raises(ConfigurationError):
            error_vector_magnitude(ofdm_wave, ofdm_wave[:-1])


class TestRateEvmCoupling:
    def test_max_rate_rises_with_cleaner_evm(self):
        assert max_rate_for_evm(-26.0) == 54
        assert max_rate_for_evm(-17.0) == 24
        assert max_rate_for_evm(-3.0) is None

    def test_top_rate_needs_more_backoff(self, ofdm_wave):
        """The paper's linearity story quantified: 64-QAM demands several
        dB more PA back-off than BPSK."""
        b54 = backoff_for_rate(ofdm_wave, 54)
        b6 = backoff_for_rate(ofdm_wave, 6)
        assert b54 is not None and b6 is not None
        assert b54 >= b6 + 3.0

    def test_distorted_waveform_fails_to_decode_without_backoff(self):
        """End-to-end: a saturated PA breaks 54 Mbps packets; backing off
        repairs them."""
        rng = np.random.default_rng(3)
        msg = bytes(rng.integers(0, 256, 150, dtype=np.uint8).tolist())
        phy = OfdmPhy(54)
        wave = phy.transmit(msg)
        pa = RappPa()
        nv = 1e-5
        hot = pa.amplify(wave, backoff_db=0.0)
        cool = pa.amplify(wave, backoff_db=9.0)

        def decodes(w):
            scaled = w / np.sqrt(np.mean(np.abs(w) ** 2))
            try:
                return phy.receive(scaled, nv) == msg
            except Exception:
                return False

        assert not decodes(hot)
        assert decodes(cool)

    def test_unknown_rate_rejected(self, ofdm_wave):
        with pytest.raises(ConfigurationError):
            backoff_for_rate(ofdm_wave, 100)
