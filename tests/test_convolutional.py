"""Tests for the (133, 171) convolutional code and Viterbi decoder."""

import numpy as np
import pytest

from repro.errors import CodingError, ConfigurationError
from repro.phy import convolutional as cc
from repro.utils.bits import random_bits

ALL_RATES = ["1/2", "2/3", "3/4", "5/6"]


class TestEncoder:
    def test_known_impulse_response(self):
        # A single 1 followed by zeros exposes the generator taps.
        coded = cc.encode(np.array([1, 0, 0, 0, 0, 0, 0]), terminate=False)
        a = coded[0::2]
        b = coded[1::2]
        # g0 = 133o: taps at x_t, x_{t-2}, x_{t-3}, x_{t-5}, x_{t-6}
        assert a.tolist() == [1, 0, 1, 1, 0, 1, 1]
        # g1 = 171o: taps at x_t, x_{t-1}, x_{t-2}, x_{t-3}, x_{t-6}
        assert b.tolist() == [1, 1, 1, 1, 0, 0, 1]

    def test_rate_half_length(self):
        coded = cc.encode(np.zeros(10, dtype=np.int8), terminate=True)
        assert coded.size == 2 * 16  # 10 info + 6 tail

    def test_linearity(self, rng):
        a = random_bits(64, rng)
        b = random_bits(64, rng)
        ca = cc.encode(a, terminate=False)
        cb = cc.encode(b, terminate=False)
        cab = cc.encode(a ^ b, terminate=False)
        assert np.array_equal(ca ^ cb, cab)

    def test_termination_returns_to_zero(self, rng):
        # Terminated stream decoded with terminated=True must round trip.
        bits = random_bits(50, rng)
        coded = cc.encode(bits, terminate=True)
        out = cc.viterbi_decode(cc.hard_to_soft(coded), 50, terminated=True)
        assert np.array_equal(out, bits)


class TestPuncturing:
    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_coded_length_matches_rate(self, rate):
        n_info = 120
        length = cc.coded_length(n_info, rate=rate, terminate=False)
        assert length == pytest.approx(n_info / cc.CODE_RATES[rate], abs=1)

    def test_unknown_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            cc.puncture(np.zeros(8), rate="7/8")

    def test_depuncture_restores_positions(self, rng):
        coded = cc.encode(random_bits(30, rng), terminate=False)
        punct = cc.puncture(coded, rate="3/4")
        restored = cc.depuncture_llrs(
            cc.hard_to_soft(punct), rate="3/4", n_mother_bits=coded.size
        )
        kept = restored != 0
        assert np.array_equal(
            (restored[kept] < 0).astype(np.int8), coded[kept]
        )

    def test_depuncture_wrong_count_raises(self):
        with pytest.raises(CodingError):
            cc.depuncture_llrs(np.ones(5), rate="3/4", n_mother_bits=12)


class TestViterbi:
    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_clean_round_trip(self, rate, rng):
        bits = random_bits(240, rng)
        coded = cc.encode_punctured(bits, rate=rate)
        decoded = cc.viterbi_decode(cc.hard_to_soft(coded), 240, rate=rate)
        assert np.array_equal(decoded, bits)

    def test_corrects_isolated_hard_errors(self, rng):
        bits = random_bits(100, rng)
        coded = cc.encode(bits)
        soft = cc.hard_to_soft(coded)
        soft[10] = -soft[10]
        soft[60] = -soft[60]
        soft[150] = -soft[150]
        assert np.array_equal(cc.viterbi_decode(soft, 100), bits)

    def test_soft_beats_hard(self, rng):
        """At moderate noise, soft-decision BER must be below hard-decision."""
        n_info = 500
        trials = 30
        sigma = 0.9
        hard_errs = soft_errs = 0
        for _ in range(trials):
            bits = random_bits(n_info, rng)
            coded = cc.encode(bits)
            noisy = cc.hard_to_soft(coded) + rng.normal(0, sigma, coded.size)
            soft_dec = cc.viterbi_decode(noisy, n_info)
            hard_dec = cc.viterbi_decode(
                cc.hard_to_soft((noisy < 0).astype(np.int8)), n_info
            )
            soft_errs += int((soft_dec != bits).sum())
            hard_errs += int((hard_dec != bits).sum())
        assert soft_errs < hard_errs

    def test_wrong_length_raises(self):
        with pytest.raises(CodingError):
            cc.viterbi_decode(np.ones(100), 60)

    def test_unterminated_decode(self, rng):
        bits = random_bits(80, rng)
        coded = cc.encode(bits, terminate=False)
        out = cc.viterbi_decode(cc.hard_to_soft(coded), 80, terminated=False)
        assert np.array_equal(out, bits)

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_punctured_noise_resilience(self, rate, rng):
        """Lower code rates must tolerate at least as much noise."""
        bits = random_bits(300, rng)
        coded = cc.encode_punctured(bits, rate=rate)
        noisy = cc.hard_to_soft(coded) * 2.0 + rng.normal(0, 1.0, coded.size)
        decoded = cc.viterbi_decode(noisy, 300, rate=rate)
        # All rates decode at this comfortable SNR.
        assert (decoded != bits).mean() < 0.05


class TestFreeDistance:
    def test_monotone_in_rate(self):
        ds = [cc.free_distance(r) for r in ALL_RATES]
        assert ds == sorted(ds, reverse=True)

    def test_mother_code_value(self):
        assert cc.free_distance("1/2") == 10
