"""Tests for MIMO capacity formulas."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.mimo.capacity import (
    capacity_bps_hz,
    ergodic_capacity,
    outage_capacity,
    rayleigh_channel,
    siso_shannon_bound,
)


class TestDeterministic:
    def test_siso_identity_channel(self):
        h = np.ones((1, 1), dtype=complex)
        assert capacity_bps_hz(h, 1.0) == pytest.approx(1.0)  # log2(2)

    def test_parallel_channels_add(self):
        h = np.eye(2, dtype=complex)
        # Two streams at SNR/2 each: 2*log2(1 + rho/2).
        assert capacity_bps_hz(h, 10.0) == pytest.approx(
            2 * np.log2(1 + 5.0)
        )

    def test_shannon_bound_values(self):
        assert siso_shannon_bound(0.0) == pytest.approx(1.0)
        assert siso_shannon_bound(20.0) == pytest.approx(np.log2(101))


class TestErgodic:
    def test_scaling_with_antennas(self, rng):
        """The MIMO promise: capacity ~ min(Nt, Nr) x SISO at high SNR."""
        c1 = ergodic_capacity(1, 1, 20.0, n_draws=400, rng=rng)
        c4 = ergodic_capacity(4, 4, 20.0, n_draws=400, rng=rng)
        assert 3.0 < c4 / c1 < 5.0

    def test_receive_diversity_adds_log_gain(self, rng):
        c11 = ergodic_capacity(1, 1, 10.0, n_draws=400, rng=rng)
        c41 = ergodic_capacity(4, 1, 10.0, n_draws=400, rng=rng)
        assert c41 > c11

    def test_vector_snr(self, rng):
        caps = ergodic_capacity(2, 2, np.array([0.0, 10.0, 20.0]),
                                n_draws=100, rng=rng)
        assert caps.shape == (3,)
        assert np.all(np.diff(caps) > 0)

    def test_15_bps_hz_reachable_with_4x4(self, rng):
        """The paper's 15 bps/Hz needs ~45 dB on SISO but ~20 dB on 4x4."""
        c = ergodic_capacity(4, 4, 22.0, n_draws=400, rng=rng)
        assert c > 15.0
        assert siso_shannon_bound(22.0) < 15.0


class TestOutage:
    def test_below_ergodic(self, rng):
        erg = ergodic_capacity(2, 2, 10.0, n_draws=400, rng=rng)
        out = outage_capacity(2, 2, 10.0, outage=0.1, n_draws=400, rng=rng)
        assert out < erg

    def test_invalid_outage_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            outage_capacity(2, 2, 10.0, outage=1.5, rng=rng)


class TestChannelDraw:
    def test_unit_average_power(self, rng):
        h = rayleigh_channel(50, 50, rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, abs=0.05)

    def test_batched_draws_match_sequential(self, rng_factory):
        from repro.phy.mimo.capacity import rayleigh_channels
        batched = rayleigh_channels(20, 3, 2, rng_factory(55))
        rng = rng_factory(55)
        sequential = np.stack([rayleigh_channel(3, 2, rng)
                               for _ in range(20)])
        assert np.array_equal(batched, sequential)


class TestEngineBackedRegression:
    """The vectorised MC-engine paths must reproduce the seed-era
    per-draw loops bit for bit at the same seed."""

    def test_ergodic_matches_legacy_loop(self, rng_factory):
        c = ergodic_capacity(2, 3, np.array([5.0, 15.0]), n_draws=150,
                             rng=rng_factory(21))
        rng = rng_factory(21)
        snr = 10.0 ** (np.array([5.0, 15.0]) / 10.0)
        totals = np.zeros(2)
        for _ in range(150):
            h = rayleigh_channel(2, 3, rng)
            eig = np.maximum(np.linalg.eigvalsh(h @ h.conj().T).real, 0.0)
            totals += np.log2(1.0 + np.outer(snr / 3, eig)).sum(axis=1)
        assert np.array_equal(c, totals / 150)

    def test_outage_matches_legacy_loop(self, rng_factory):
        c = outage_capacity(2, 2, 12.0, outage=0.05, n_draws=300,
                            rng=rng_factory(23))
        rng = rng_factory(23)
        caps = np.array([capacity_bps_hz(rayleigh_channel(2, 2, rng),
                                         10.0 ** 1.2)
                         for _ in range(300)])
        assert c == float(np.quantile(caps, 0.05))

    def test_ergodic_adaptive_smoke(self, rng_factory):
        mc = ergodic_capacity(2, 2, 10.0, rng=rng_factory(25),
                              precision=0.05, max_trials=5000,
                              batch_size=500, return_result=True)
        assert mc.stop_reason in ("precision", "max_trials")
        assert mc.n_trials % 500 == 0
        assert mc.ci_low < mc.estimate < mc.ci_high

    def test_outage_adaptive_smoke(self, rng_factory):
        mc = outage_capacity(2, 2, 12.0, outage=0.1,
                             rng=rng_factory(26), precision=0.1,
                             max_trials=4000, return_result=True)
        assert mc.stop_reason in ("precision", "max_trials")
        assert mc.ci_low <= mc.estimate <= mc.ci_high
