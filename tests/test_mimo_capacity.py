"""Tests for MIMO capacity formulas."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.mimo.capacity import (
    capacity_bps_hz,
    ergodic_capacity,
    outage_capacity,
    rayleigh_channel,
    siso_shannon_bound,
)


class TestDeterministic:
    def test_siso_identity_channel(self):
        h = np.ones((1, 1), dtype=complex)
        assert capacity_bps_hz(h, 1.0) == pytest.approx(1.0)  # log2(2)

    def test_parallel_channels_add(self):
        h = np.eye(2, dtype=complex)
        # Two streams at SNR/2 each: 2*log2(1 + rho/2).
        assert capacity_bps_hz(h, 10.0) == pytest.approx(
            2 * np.log2(1 + 5.0)
        )

    def test_shannon_bound_values(self):
        assert siso_shannon_bound(0.0) == pytest.approx(1.0)
        assert siso_shannon_bound(20.0) == pytest.approx(np.log2(101))


class TestErgodic:
    def test_scaling_with_antennas(self, rng):
        """The MIMO promise: capacity ~ min(Nt, Nr) x SISO at high SNR."""
        c1 = ergodic_capacity(1, 1, 20.0, n_draws=400, rng=rng)
        c4 = ergodic_capacity(4, 4, 20.0, n_draws=400, rng=rng)
        assert 3.0 < c4 / c1 < 5.0

    def test_receive_diversity_adds_log_gain(self, rng):
        c11 = ergodic_capacity(1, 1, 10.0, n_draws=400, rng=rng)
        c41 = ergodic_capacity(4, 1, 10.0, n_draws=400, rng=rng)
        assert c41 > c11

    def test_vector_snr(self, rng):
        caps = ergodic_capacity(2, 2, np.array([0.0, 10.0, 20.0]),
                                n_draws=100, rng=rng)
        assert caps.shape == (3,)
        assert np.all(np.diff(caps) > 0)

    def test_15_bps_hz_reachable_with_4x4(self, rng):
        """The paper's 15 bps/Hz needs ~45 dB on SISO but ~20 dB on 4x4."""
        c = ergodic_capacity(4, 4, 22.0, n_draws=400, rng=rng)
        assert c > 15.0
        assert siso_shannon_bound(22.0) < 15.0


class TestOutage:
    def test_below_ergodic(self, rng):
        erg = ergodic_capacity(2, 2, 10.0, n_draws=400, rng=rng)
        out = outage_capacity(2, 2, 10.0, outage=0.1, n_draws=400, rng=rng)
        assert out < erg

    def test_invalid_outage_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            outage_capacity(2, 2, 10.0, outage=1.5, rng=rng)


class TestChannelDraw:
    def test_unit_average_power(self, rng):
        h = rayleigh_channel(50, 50, rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, abs=0.05)
