"""Smoke tests: every example script must run cleanly.

Examples are a deliverable; these tests keep them from rotting. Each is
executed in-process with a stubbed ``__main__`` guard via runpy.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # every example narrates its scenario


def test_expected_examples_present():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 6
