"""Tests for the evolution framework — the paper's core table."""

import pytest

from repro.core.evolution import (
    REGULATORY_NOTES,
    evolution_report,
    fivefold_law,
    format_evolution_table,
    spectral_efficiency_series,
)


class TestSeries:
    def test_paper_chain(self):
        names, effs = spectral_efficiency_series()
        assert names == ["802.11", "802.11b", "802.11a", "802.11n"]
        assert effs[0] == pytest.approx(0.1)
        assert effs[-1] == pytest.approx(15.0)

    def test_strictly_increasing(self):
        _, effs = spectral_efficiency_series()
        assert all(b > a for a, b in zip(effs, effs[1:]))


class TestFivefoldLaw:
    def test_ratio_near_five(self):
        """The paper's headline: 'fivefold increases with each new
        standard'."""
        ratio, _ = fivefold_law()
        assert 4.5 < ratio < 6.0


class TestReport:
    def test_every_generation_has_regulation_note(self):
        rows = evolution_report()
        assert all(row["regulation"] for row in rows)
        assert set(REGULATORY_NOTES) == {row["standard"] for row in rows}

    def test_ranges_computed(self):
        for row in evolution_report():
            assert row["range_at_min_rate_m"] > row["range_at_max_rate_m"]

    def test_max_rates_ladder(self):
        rows = {r["standard"]: r["max_rate_mbps"] for r in evolution_report()}
        assert rows["802.11"] == 2
        assert rows["802.11b"] == 11
        assert rows["802.11a"] == 54
        assert rows["802.11n"] == pytest.approx(600)


class TestFormatting:
    def test_table_renders_all_rows(self):
        text = format_evolution_table()
        for name in ("802.11b", "802.11n", "MIMO-OFDM"):
            assert name in text

    def test_header_present(self):
        assert "bps/Hz" in format_evolution_table()
