"""Tests for repro.phy.ldpc."""

import numpy as np
import pytest

from repro.errors import CodingError, ConfigurationError
from repro.phy.ldpc import (
    LdpcCode,
    expand_base_matrix,
    gallager_regular,
    generator_from_parity_check,
    gf2_rank,
    gf2_row_reduce,
    quasi_cyclic,
)
from repro.utils.bits import random_bits

HAMMING_H = np.array(
    [[1, 0, 1, 0, 1, 0, 1], [0, 1, 1, 0, 0, 1, 1], [0, 0, 0, 1, 1, 1, 1]],
    dtype=np.uint8,
)


@pytest.fixture(scope="module")
def code648():
    return LdpcCode.from_standard(648, "1/2")


class TestGf2:
    def test_rank_of_identity(self):
        assert gf2_rank(np.eye(5, dtype=np.uint8)) == 5

    def test_rank_with_dependent_rows(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    def test_row_reduce_idempotent(self, rng):
        m = rng.integers(0, 2, size=(6, 10)).astype(np.uint8)
        r1, p1 = gf2_row_reduce(m)
        r2, p2 = gf2_row_reduce(r1)
        assert np.array_equal(r1, r2)
        assert p1 == p2

    def test_generator_orthogonal_to_h(self, rng):
        g, perm = generator_from_parity_check(HAMMING_H)
        # Every generator row, mapped back, must satisfy H c = 0.
        for row in g:
            cw = np.zeros(7, dtype=np.uint8)
            cw[perm] = row
            assert not np.any((HAMMING_H @ cw) % 2)

    def test_zero_rank_rejected(self):
        with pytest.raises(CodingError):
            generator_from_parity_check(np.zeros((3, 7), dtype=np.uint8))


class TestConstructions:
    def test_gallager_regular_weights(self):
        h = gallager_regular(120, column_weight=3, row_weight=6, rng=0)
        assert np.all(h.sum(axis=0) == 3)
        assert np.all(h.sum(axis=1) == 6)

    def test_gallager_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            gallager_regular(100, column_weight=3, row_weight=7)

    def test_qc_no_four_cycles(self):
        h = quasi_cyclic(648, "1/2", 27, rng=0)
        overlap = h.astype(int) @ h.T.astype(int)
        np.fill_diagonal(overlap, 0)
        assert overlap.max() <= 1

    def test_qc_shape_and_rate(self):
        h = quasi_cyclic(648, "3/4", 27, rng=1)
        assert h.shape == (162, 648)

    def test_qc_bad_lifting_rejected(self):
        with pytest.raises(ConfigurationError):
            quasi_cyclic(650, "1/2", 27)

    def test_expand_base_matrix_shifts(self):
        base = np.array([[0, 1], [-1, 2]])
        h = expand_base_matrix(base, 3)
        assert h.shape == (6, 6)
        # Block (0,0): identity. Block (1,0): absent.
        assert np.array_equal(h[:3, :3], np.eye(3, dtype=np.uint8))
        assert not h[3:, :3].any()


class TestCodeObject:
    def test_dimensions(self, code648):
        assert code648.n == 648
        assert code648.k == 648 - gf2_rank(code648.h)

    def test_encode_gives_codeword(self, code648, rng):
        info = random_bits(code648.k, rng)
        assert code648.is_codeword(code648.encode(info))

    def test_extract_info_inverts_encode(self, code648, rng):
        info = random_bits(code648.k, rng)
        assert np.array_equal(
            code648.extract_info(code648.encode(info)), info
        )

    def test_wrong_info_length_raises(self, code648):
        with pytest.raises(CodingError):
            code648.encode(np.zeros(5, dtype=np.int8))

    def test_syndrome_flags_flip(self, code648, rng):
        cw = code648.encode(random_bits(code648.k, rng))
        cw[17] ^= 1
        assert not code648.is_codeword(cw)

    def test_all_zero_column_rejected(self):
        h = HAMMING_H.copy()
        h[:, 2] = 0
        with pytest.raises(ConfigurationError):
            LdpcCode(h)

    def test_standard_lengths_enforced(self):
        with pytest.raises(ConfigurationError):
            LdpcCode.from_standard(1000, "1/2")


class TestDecoder:
    @pytest.mark.parametrize("algorithm", ["min-sum", "sum-product"])
    def test_corrects_single_flip(self, algorithm):
        code = LdpcCode(HAMMING_H)
        cw = code.encode(np.array([1, 0, 1, 1], dtype=np.int8))
        llr = (1.0 - 2.0 * cw) * 4.0
        llr[2] = -llr[2]
        decoded, converged, _ = code.decode(llr, algorithm=algorithm)
        assert converged
        assert np.array_equal(decoded, cw)

    def test_clean_input_zero_iterations(self, code648, rng):
        cw = code648.encode(random_bits(code648.k, rng))
        _, converged, iters = code648.decode((1.0 - 2.0 * cw) * 8.0)
        assert converged
        assert iters == 0

    @pytest.mark.parametrize("algorithm", ["min-sum", "sum-product"])
    def test_waterfall_at_3db(self, code648, algorithm, rng):
        """At Eb/N0 = 3 dB a rate-1/2 n=648 code decodes essentially always."""
        sigma2 = 1.0 / (2 * code648.rate * 10 ** 0.3)
        failures = 0
        for _ in range(10):
            info = random_bits(code648.k, rng)
            cw = code648.encode(info)
            y = (1.0 - 2.0 * cw) + rng.normal(0, np.sqrt(sigma2), code648.n)
            decoded, converged, _ = code648.decode(
                2.0 * y / sigma2, algorithm=algorithm
            )
            failures += not np.array_equal(
                code648.extract_info(decoded), info
            )
        assert failures == 0

    def test_coding_gain_over_uncoded(self, code648, rng):
        """At Eb/N0 = 3 dB uncoded BPSK has BER ~2e-2; LDPC ~0."""
        sigma2 = 1.0 / (2 * code648.rate * 10 ** 0.3)
        info = random_bits(code648.k, rng)
        cw = code648.encode(info)
        y = (1.0 - 2.0 * cw) + rng.normal(0, np.sqrt(sigma2), code648.n)
        uncoded_errs = int(((y < 0).astype(np.int8) != cw).sum())
        decoded, _, _ = code648.decode(2.0 * y / sigma2)
        assert uncoded_errs > 0
        assert int((decoded != cw).sum()) < uncoded_errs

    def test_wrong_llr_length_raises(self, code648):
        with pytest.raises(CodingError):
            code648.decode(np.ones(100))

    def test_unknown_algorithm_raises(self, code648):
        with pytest.raises(ConfigurationError):
            code648.decode(np.ones(648), algorithm="magic")

    def test_unconverged_flagged(self, code648, rng):
        noise = rng.normal(0, 1.0, code648.n)
        _, converged, iters = code648.decode(noise, max_iterations=3)
        assert iters <= 3
        # Pure noise essentially never satisfies 324 checks.
        assert not converged
