"""Tests for the VHT (802.11ac-class) MIMO-OFDM chain and tone plans."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.interleaver import ht_deinterleave, ht_interleave
from repro.phy.mimo.ht import N_LTF, P_HTLTF, P_VHTLTF, HtPhy, VhtPhy
from repro.standards.mcs import get_family
from repro.standards.plans import TONE_PLANS, tone_plan


class TestTonePlans:
    @pytest.mark.parametrize("bw,n_data", [(20, 52), (40, 108),
                                           (80, 234), (160, 468)])
    def test_data_tone_counts_match_mcs_tables(self, bw, n_data):
        assert tone_plan(bw).n_data == n_data
        assert get_family("VHT").n_sd(bw) == n_data

    def test_pilots_are_used_tones(self):
        for plan in TONE_PLANS.values():
            assert set(plan.pilots) <= set(plan.used)

    def test_dc_and_guards_unused(self):
        for plan in TONE_PLANS.values():
            assert 0 not in plan.used
            assert max(plan.used) < plan.fft_size // 2

    def test_unknown_width_rejected(self):
        with pytest.raises(ConfigurationError):
            tone_plan(30)


class TestWideInterleaver:
    @pytest.mark.parametrize("bw", [80, 160])
    @pytest.mark.parametrize("bpsc", [1, 2, 4, 6, 8])
    def test_round_trip(self, bw, bpsc, rng):
        n_cbpss = tone_plan(bw).n_data * bpsc
        bits = rng.integers(0, 2, 3 * n_cbpss).astype(np.int8)
        out = ht_deinterleave(ht_interleave(bits, bpsc, bw), bpsc, bw)
        assert np.array_equal(out, bits)

    def test_permutation_spreads_adjacent_bits(self):
        n_cbpss = tone_plan(80).n_data * 8
        bits = np.zeros(n_cbpss, dtype=np.int8)
        bits[:16] = 1
        spread = np.flatnonzero(ht_interleave(bits, 8, 80))
        assert np.min(np.diff(np.sort(spread))) >= 1
        assert np.max(spread) - np.min(spread) > n_cbpss // 2


class TestLtfMatrices:
    def test_p8_orthogonal(self):
        assert np.allclose(P_VHTLTF @ P_VHTLTF.T, 8 * np.eye(8))

    def test_p8_extends_p4(self):
        assert np.array_equal(P_VHTLTF[:4, :4], P_HTLTF)

    def test_ltf_counts_cover_8_streams(self):
        assert set(N_LTF) == set(range(1, 9))
        for n_ss, n_ltf in N_LTF.items():
            assert n_ltf >= n_ss


class TestVhtPhyConfig:
    def test_invalid_mcs_rejected(self):
        with pytest.raises(ConfigurationError):
            VhtPhy(mcs=10)

    def test_invalid_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            VhtPhy(mcs=0, spatial_streams=9)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            VhtPhy(mcs=0, bandwidth_mhz=30)

    def test_excluded_combination_rejected(self):
        """VHT MCS 9 x1 at 20 MHz is excluded (non-integral N_DBPS),
        exactly as in the real standard — but valid with 3 streams."""
        with pytest.raises(ConfigurationError):
            VhtPhy(mcs=9, spatial_streams=1, bandwidth_mhz=20)
        VhtPhy(mcs=9, spatial_streams=3, bandwidth_mhz=20)

    def test_ht_still_rejects_wide_channels(self):
        with pytest.raises(ConfigurationError):
            HtPhy(mcs=0, bandwidth_mhz=80)

    def test_headline_rate(self):
        phy = VhtPhy(mcs=9, spatial_streams=8, bandwidth_mhz=160)
        assert phy.data_rate_mbps("short") == pytest.approx(6933.3, abs=0.1)

    def test_preamble_longer_than_ht(self):
        ht = HtPhy(mcs=0)
        vht = VhtPhy(mcs=0)
        assert vht.frame_duration_s(100) > ht.frame_duration_s(100)


class TestVhtLoopback:
    @pytest.mark.parametrize("mcs,streams,bw", [
        (0, 1, 20),    # BPSK baseline
        (8, 1, 80),    # 256-QAM on a wide channel
        (9, 2, 160),   # 256-QAM 5/6, widest channel
        (7, 5, 40),    # 5 streams exercises the P8 matrix
        (9, 8, 80),    # full 8-stream spatial multiplexing
    ])
    def test_noiseless_round_trip(self, mcs, streams, bw, rng):
        phy = VhtPhy(mcs=mcs, spatial_streams=streams, bandwidth_mhz=bw)
        psdu = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        tx = phy.transmit(psdu)
        noise_var = 1e-8
        noise = np.sqrt(noise_var / 2) * (
            rng.normal(size=tx.shape) + 1j * rng.normal(size=tx.shape)
        )
        assert phy.receive(tx + noise, noise_var,
                           psdu_bytes=len(psdu)) == psdu

    def test_flat_mimo_channel(self, rng):
        phy = VhtPhy(mcs=8, spatial_streams=4, bandwidth_mhz=80, n_rx=6)
        psdu = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        tx = phy.transmit(psdu)
        h = (rng.normal(size=(6, 4))
             + 1j * rng.normal(size=(6, 4))) / np.sqrt(2)
        noise_var = 1e-6
        rx = h @ tx
        rx = rx + np.sqrt(noise_var / 2) * (
            rng.normal(size=rx.shape) + 1j * rng.normal(size=rx.shape)
        )
        assert phy.receive(rx, noise_var, psdu_bytes=len(psdu)) == psdu

    def test_vht_20mhz_matches_ht_waveform(self, rng):
        """At 20/40 MHz x 1-4 streams the chains share everything but
        MCS indexing: identical configs give identical waveforms."""
        psdu = bytes(rng.integers(0, 256, 40, dtype=np.uint8))
        ht = HtPhy(mcs=11, bandwidth_mhz=40)  # 16-QAM 1/2 x2
        vht = VhtPhy(mcs=3, spatial_streams=2, bandwidth_mhz=40)
        assert np.array_equal(ht.transmit(psdu), vht.transmit(psdu))


class TestVhtLinkSimulator:
    def test_vht_names_parse_and_run(self, rng):
        from repro.core.link import LinkSimulator

        sim = LinkSimulator("vht80-8-x2", "awgn", rng=3)
        assert sim.rate_mbps == pytest.approx(702.0)
        result = sim.run(snr_db=45.0, n_packets=3, payload_bytes=50)
        assert result.per == 0.0

    def test_unknown_vht_width_rejected(self):
        from repro.core.link import LinkSimulator

        with pytest.raises(ConfigurationError):
            LinkSimulator("vht30-0", "awgn")
