"""Tests for MAC fragmentation analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.fragmentation import (
    effective_throughput_mbps,
    fragment_sizes,
    fragmentation_study,
    optimal_fragment_size,
)


class TestFragmentSizes:
    def test_exact_division(self):
        assert fragment_sizes(1024, 256) == [256, 256, 256, 256]

    def test_remainder(self):
        assert fragment_sizes(1500, 512) == [512, 512, 476]

    def test_threshold_above_msdu(self):
        assert fragment_sizes(300, 1500) == [300]

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            fragment_sizes(0, 256)


class TestThroughput:
    def test_clean_channel_prefers_whole_frames(self):
        """At negligible BER, fragmentation is pure overhead."""
        whole = effective_throughput_mbps(1500, 1500, 1e-9)
        small = effective_throughput_mbps(1500, 128, 1e-9)
        assert whole > small

    def test_dirty_channel_prefers_fragments(self):
        """At high BER, small fragments limit the retransmission cost."""
        whole = effective_throughput_mbps(1500, 1500, 3e-4)
        frag = effective_throughput_mbps(1500, 256, 3e-4)
        assert frag > whole

    def test_throughput_below_phy_rate(self):
        assert effective_throughput_mbps(1500, 1500, 0.0) < 54.0

    def test_worse_ber_lower_throughput(self):
        good = effective_throughput_mbps(1500, 512, 1e-6)
        bad = effective_throughput_mbps(1500, 512, 1e-4)
        assert bad < good


class TestOptimum:
    def test_optimal_size_shrinks_with_ber(self):
        clean_thr, _ = optimal_fragment_size(1500, 1e-7)
        dirty_thr, _ = optimal_fragment_size(1500, 3e-4)
        assert dirty_thr < clean_thr

    def test_study_rows(self):
        rows = fragmentation_study()
        assert len(rows) == 5
        # The best choice never loses to the unfragmented baseline.
        for ber, thr, best, whole in rows:
            assert best >= whole - 1e-9

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_fragment_size(1500, 1e-5, candidates=[])
