"""Tests for the hidden-terminal simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mac.hidden import HiddenTerminalSimulator

HIDDEN_PAIR = np.array([[70.0, 0.0], [-70.0, 0.0]])
AUDIBLE_PAIR = np.array([[20.0, 0.0], [-20.0, 0.0]])


class TestGeometry:
    def test_hidden_pair_detected(self):
        sim = HiddenTerminalSimulator(HIDDEN_PAIR, carrier_sense_range_m=80.0)
        assert sim.hidden_pair_count() == 1

    def test_audible_pair_not_hidden(self):
        sim = HiddenTerminalSimulator(AUDIBLE_PAIR,
                                      carrier_sense_range_m=80.0)
        assert sim.hidden_pair_count() == 0

    def test_bad_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            HiddenTerminalSimulator(np.zeros(3))


class TestCollisions:
    def test_audible_stations_never_collide(self):
        sim = HiddenTerminalSimulator(AUDIBLE_PAIR,
                                      carrier_sense_range_m=80.0, rng=1)
        result = sim.run(2.0)
        assert result.collisions == 0
        assert result.successes > 0

    def test_hidden_stations_collide(self):
        sim = HiddenTerminalSimulator(HIDDEN_PAIR,
                                      carrier_sense_range_m=80.0,
                                      attempt_rate_per_s=200.0, rng=2)
        result = sim.run(2.0)
        assert result.collisions > 0
        assert result.success_ratio < 1.0

    def test_rts_cts_reduces_hidden_losses(self):
        """The mechanism RTS/CTS exists for."""
        losses = {}
        for rts in (False, True):
            sim = HiddenTerminalSimulator(
                HIDDEN_PAIR, carrier_sense_range_m=80.0,
                attempt_rate_per_s=300.0, rts_cts=rts, rng=3,
            )
            result = sim.run(3.0)
            losses[rts] = 1.0 - result.success_ratio
        assert losses[True] < losses[False]

    def test_more_attempts_more_collisions(self):
        slow = HiddenTerminalSimulator(HIDDEN_PAIR, 80.0,
                                       attempt_rate_per_s=50.0, rng=4).run(2.0)
        fast = HiddenTerminalSimulator(HIDDEN_PAIR, 80.0,
                                       attempt_rate_per_s=500.0, rng=4).run(2.0)
        assert fast.success_ratio < slow.success_ratio


class TestBookkeeping:
    def test_attempts_accounted(self):
        sim = HiddenTerminalSimulator(HIDDEN_PAIR, 80.0, rng=5)
        result = sim.run(1.0)
        assert result.successes + result.collisions <= result.attempts + 2

    def test_throughput_positive(self):
        sim = HiddenTerminalSimulator(AUDIBLE_PAIR, 80.0, rng=6)
        assert sim.run(1.0).throughput_mbps(1000) > 0

    def test_invalid_duration_rejected(self):
        sim = HiddenTerminalSimulator(AUDIBLE_PAIR, 80.0)
        with pytest.raises(ConfigurationError):
            sim.run(0.0)
