"""Tests for cooperative diversity: outage theory, relay sim, selection,
power sharing."""

import numpy as np
import pytest

from repro.coop.outage import (
    df_outage_probability,
    direct_outage_probability,
    diversity_order,
    selection_outage_probability,
)
from repro.coop.power_sharing import cooperative_energy_per_bit
from repro.coop.relay import RelaySimulator
from repro.coop.selection import best_relay_index, selection_gain_db
from repro.errors import ConfigurationError

SNRS = np.array([10.0, 15.0, 20.0, 25.0, 30.0])


class TestOutageTheory:
    def test_direct_matches_exponential_cdf(self):
        g = 10.0
        expected = 1 - np.exp(-1.0 / g)  # R=1 -> threshold 1
        assert direct_outage_probability(10.0) == pytest.approx(expected)

    def test_df_beats_direct_at_high_snr(self):
        assert df_outage_probability(25.0) < direct_outage_probability(25.0)

    def test_df_diversity_order_two(self):
        order = diversity_order(SNRS, df_outage_probability(SNRS))
        assert order == pytest.approx(2.0, abs=0.2)

    def test_direct_diversity_order_one(self):
        order = diversity_order(SNRS, direct_outage_probability(SNRS))
        assert order == pytest.approx(1.0, abs=0.1)

    def test_selection_diversity_order_n_plus_one(self):
        order = diversity_order(
            SNRS, selection_outage_probability(SNRS, n_relays=2)
        )
        assert order == pytest.approx(3.0, abs=0.3)

    def test_asymmetric_links(self):
        # A strong relay-destination link lowers outage.
        weak = df_outage_probability(15.0, 15.0, 15.0)
        strong = df_outage_probability(15.0, 15.0, 30.0)
        assert strong < weak

    def test_invalid_relay_count_rejected(self):
        with pytest.raises(ConfigurationError):
            selection_outage_probability(10.0, -1)


class TestRelaySimulator:
    def test_df_improves_link_quality(self, rng):
        """The paper's core claim, measured at symbol level."""
        sim = RelaySimulator("df", rng=rng)
        result = sim.run(15.0, n_blocks=400, block_bits=64)
        assert result.ber_cooperative < result.ber_direct
        assert result.outage_cooperative < result.outage_direct

    def test_af_improves_link_quality(self, rng):
        sim = RelaySimulator("af", rng=rng)
        result = sim.run(15.0, n_blocks=400, block_bits=64)
        assert result.ber_cooperative < result.ber_direct

    def test_relay_gain_helps(self, rng):
        base = RelaySimulator("df", rng=1).run(12.0, 400, 64)
        boosted = RelaySimulator("df", relay_gain_db=10.0, rng=1).run(
            12.0, 400, 64
        )
        assert boosted.relay_decode_rate > base.relay_decode_rate
        assert boosted.outage_cooperative <= base.outage_cooperative * 1.1

    def test_decode_rate_rises_with_snr(self, rng):
        sim = RelaySimulator("df", rng=rng)
        low = sim.run(5.0, 200, 64).relay_decode_rate
        high = sim.run(25.0, 200, 64).relay_decode_rate
        assert high > low

    def test_simulated_diversity_slope(self, rng):
        """Cooperative outage falls at least quadratically vs direct."""
        sim = RelaySimulator("df", rng=rng)
        results = sim.sweep([10.0, 20.0], n_blocks=600, block_bits=32)
        direct_ratio = results[0].outage_direct / max(
            results[1].outage_direct, 1e-4
        )
        coop_ratio = results[0].outage_cooperative / max(
            results[1].outage_cooperative, 1e-4
        )
        assert coop_ratio > direct_ratio

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            RelaySimulator("xyz")

    def test_block_size_must_divide(self):
        sim = RelaySimulator("df", bits_per_symbol=2)
        with pytest.raises(ConfigurationError):
            sim.run(10.0, 10, block_bits=33)


class TestSelection:
    def test_picks_max_min(self):
        idx = best_relay_index([10.0, 20.0, 30.0], [25.0, 18.0, 5.0])
        assert idx == 1  # min(20,18)=18 beats min(10,25)=10 and min(30,5)=5

    def test_single_candidate(self):
        assert best_relay_index([7.0], [9.0]) == 0

    def test_gain_nonnegative(self, rng):
        sr = rng.uniform(0, 30, 10)
        rd = rng.uniform(0, 30, 10)
        assert selection_gain_db(sr, rd) >= 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_relay_index([], [])


class TestPowerSharing:
    def test_relay_saves_battery_energy(self):
        result = cooperative_energy_per_bit(60.0, 0.5)
        assert result["saving_ratio"] is not None
        assert result["saving_ratio"] > 1.0

    def test_closer_relay_saves_more(self):
        near = cooperative_energy_per_bit(60.0, 0.25)
        far = cooperative_energy_per_bit(60.0, 0.75)
        assert near["cooperative_j_per_bit"] <= far["cooperative_j_per_bit"]

    def test_extends_reach_beyond_direct_range(self):
        """Where the direct link dies, the relayed battery hop survives."""
        result = cooperative_energy_per_bit(110.0, 0.5)
        assert result["direct_j_per_bit"] is None
        assert result["cooperative_j_per_bit"] is not None

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            cooperative_energy_per_bit(50.0, 1.5)
