"""Tests for the repro.campaign sweep orchestrator."""

import json
import os

import numpy as np
import pytest

from repro.campaign import (CampaignSpec, ResultsStore, builtin_campaign,
                            builtin_campaigns, format_pivot, load_spec, pivot,
                            point_key, point_kinds, run_campaign)
from repro.campaign.runner import register_point_kind
from repro.campaign.seeding import point_generator, point_seed
from repro.errors import ConfigurationError


def quick_spec(**overrides):
    """A four-point link campaign small enough for unit tests."""
    fields = dict(
        name="tiny", kind="link",
        factors={"phy": ["dsss-1", "dsss-2"], "snr_db": [0.0, 8.0]},
        fixed={"channel": "awgn", "n_packets": 3, "payload_bytes": 20},
        base_seed=3,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestSpec:
    def test_expansion_order_and_params(self):
        points = quick_spec().expand()
        assert [p.index for p in points] == [0, 1, 2, 3]
        # Last factor varies fastest.
        assert [(p.params["phy"], p.params["snr_db"]) for p in points] == [
            ("dsss-1", 0.0), ("dsss-1", 8.0),
            ("dsss-2", 0.0), ("dsss-2", 8.0),
        ]
        assert all(p.params["channel"] == "awgn" for p in points)
        assert quick_spec().n_points == 4

    def test_rejects_factor_fixed_overlap(self):
        with pytest.raises(ConfigurationError):
            quick_spec(fixed={"phy": "cck-11"})

    def test_rejects_empty_factor(self):
        with pytest.raises(ConfigurationError):
            quick_spec(factors={"phy": []})

    def test_rejects_scalar_factor_value(self):
        with pytest.raises(ConfigurationError):
            quick_spec(factors={"phy": "dsss-1"})

    def test_rejects_unsafe_name(self):
        with pytest.raises(ConfigurationError):
            quick_spec(name="../escape")

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ConfigurationError):
            quick_spec(factors={"phy": [["nested"]]})

    def test_json_roundtrip(self, tmp_path):
        spec = quick_spec()
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_json(path)
        assert loaded == spec
        assert load_spec(str(path)) == spec

    def test_load_spec_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            load_spec("no-such-campaign")

    def test_builtins_expand(self):
        names = set(builtin_campaigns())
        assert {"e3-dsss-cck", "e4-ofdm", "e6-mimo-range"} <= names
        for name in names:
            spec = builtin_campaign(name)
            assert spec.n_points == len(spec.expand())
            assert spec.kind in point_kinds()

    def test_unknown_builtin(self):
        with pytest.raises(ConfigurationError):
            builtin_campaign("e99-nope")


class TestSeeding:
    def test_point_seed_is_stateless_and_order_free(self):
        a = [point_seed(7, i).generate_state(4).tolist() for i in (3, 0, 2)]
        b = [point_seed(7, i).generate_state(4).tolist() for i in (3, 0, 2)]
        assert a == b
        assert a[0] != a[1] != a[2]

    def test_matches_seedsequence_spawn(self):
        spawned = np.random.SeedSequence(7).spawn(4)
        for i, child in enumerate(spawned):
            assert (point_seed(7, i).generate_state(4).tolist()
                    == child.generate_state(4).tolist())

    def test_point_generator_reproducible(self):
        x = point_generator(1, 2).integers(0, 1 << 30, 8)
        y = point_generator(1, 2).integers(0, 1 << 30, 8)
        assert (x == y).all()


class TestCacheKey:
    def test_stable_under_dict_order(self):
        k1 = point_key("link", "1", 0, 2, {"a": 1, "b": 2.5})
        k2 = point_key("link", "1", 0, 2, {"b": 2.5, "a": 1})
        assert k1 == k2

    @pytest.mark.parametrize("change", [
        {"kind": "dcf"}, {"code_version": "2"}, {"base_seed": 1},
        {"index": 3}, {"params": {"a": 2, "b": 2.5}},
    ])
    def test_sensitive_to_every_field(self, change):
        base = dict(kind="link", code_version="1", base_seed=0, index=2,
                    params={"a": 1, "b": 2.5})
        changed = dict(base)
        changed.update(change)
        assert point_key(**base) != point_key(**changed)


class TestRunner:
    def test_serial_run_produces_ordered_ok_records(self):
        result = run_campaign(quick_spec())
        assert result.n_points == 4
        assert result.n_executed == 4
        assert result.n_cached == 0
        assert [r["index"] for r in result.records] == [0, 1, 2, 3]
        assert all(r["outcome"] == "ok" for r in result.records)
        assert all(0.0 <= r["metrics"]["per"] <= 1.0 for r in result.records)

    def test_parallel_bit_identical_to_serial(self, tmp_path):
        spec = quick_spec()
        serial = run_campaign(spec, workers=1,
                              store=ResultsStore(tmp_path / "s1"))
        parallel = run_campaign(spec, workers=2,
                                store=ResultsStore(tmp_path / "s2"))
        assert serial.metrics_by_index() == parallel.metrics_by_index()
        # and the parallel run really left this process
        assert os.getpid() not in {r["worker"] for r in parallel.records}

    def test_rerun_is_all_cache_hits(self, tmp_path):
        spec = quick_spec()
        store = ResultsStore(tmp_path)
        first = run_campaign(spec, store=store)
        second = run_campaign(spec, store=store)
        assert second.n_executed == 0
        assert second.n_cached == first.n_points
        assert second.cache_hit_rate == 1.0
        assert all(r["cached"] for r in second.records)
        assert second.metrics_by_index() == first.metrics_by_index()

    def test_seed_change_invalidates_cache(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_campaign(quick_spec(), store=store)
        reseeded = run_campaign(quick_spec(base_seed=99), store=store)
        assert reseeded.n_executed == 4

    def test_force_recomputes(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_campaign(quick_spec(), store=store)
        forced = run_campaign(quick_spec(), store=store, force=True)
        assert forced.n_executed == 4
        # Store stays clean: still one record per key after the rewrite.
        assert len(store.load("tiny")) == 4

    def test_grid_growth_reuses_common_prefix_only(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_campaign(quick_spec(), store=store)
        # Appending a value to the *last* factor renumbers indices 2..,
        # so only the first phy's points survive the cache.
        grown = run_campaign(
            quick_spec(factors={"phy": ["dsss-1", "dsss-2"],
                                "snr_db": [0.0, 8.0, 16.0]}),
            store=store)
        assert grown.n_cached == 2
        assert grown.n_executed == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(quick_spec(kind="quantum"))

    def test_point_failure_is_recorded_not_raised(self, tmp_path):
        spec = CampaignSpec(
            name="mixed", kind="link",
            factors={"phy": ["dsss-1", "warp-9"]},
            fixed={"channel": "awgn", "snr_db": 5.0,
                   "n_packets": 2, "payload_bytes": 10},
        )
        result = run_campaign(spec, store=ResultsStore(tmp_path))
        outcomes = {r["params"]["phy"]: r["outcome"] for r in result.records}
        assert outcomes == {"dsss-1": "ok", "warp-9": "error"}
        # Failures are not served from cache: the bad point retries.
        again = run_campaign(spec, store=ResultsStore(tmp_path))
        assert again.n_executed == 1

    def test_custom_point_kind(self):
        register_point_kind(
            "echo", lambda params, rng: {"double": 2 * params["x"]},
            code_version="1")
        spec = CampaignSpec(name="echo-test", kind="echo",
                            factors={"x": [1, 2, 3]})
        result = run_campaign(spec)
        assert [r["metrics"]["double"] for r in result.records] == [2, 4, 6]

    def test_mimo_range_and_dcf_kinds_run(self):
        mimo = run_campaign(CampaignSpec(
            name="mimo-mini", kind="mimo-range",
            factors={"antennas": ["1x1", "2x2"]},
            fixed={"n_draws": 200, "outage": 0.05}))
        margins = [r["metrics"]["margin_db"] for r in mimo.records]
        assert margins[0] > margins[1]  # diversity shrinks the margin
        dcf = run_campaign(CampaignSpec(
            name="dcf-mini", kind="dcf",
            factors={"n_stations": [2]},
            fixed={"duration": 0.02}))
        assert dcf.records[0]["metrics"]["throughput_mbps"] > 0


class TestStore:
    def test_append_load_roundtrip_dedupes(self, tmp_path):
        store = ResultsStore(tmp_path)
        rec = {"key": "k1", "index": 0, "outcome": "ok",
               "metrics": {"per": 0.5}, "cached": False}
        store.append("c", rec)
        store.append("c", {**rec, "metrics": {"per": 0.25}})
        loaded = store.load("c")
        assert len(loaded) == 1
        assert loaded[0]["metrics"]["per"] == 0.25  # last write wins
        assert "cached" not in loaded[0]

    def test_torn_tail_line_ignored(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("c", {"key": "k1", "index": 0, "outcome": "ok"})
        with open(store._records_path("c"), "a") as fh:
            fh.write('{"key": "k2", "trunc')
        assert len(store.load("c")) == 1

    def test_campaigns_listing(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.campaigns() == []
        run_campaign(quick_spec(), store=store)
        assert store.campaigns() == [("tiny", 4)]
        assert store.load_spec("tiny") == quick_spec()

    def test_missing_spec_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultsStore(tmp_path).load_spec("ghost")


class TestReport:
    def records(self):
        return run_campaign(quick_spec()).records

    def test_pivot_values(self):
        rows, cols, grid = pivot(self.records(), "per", "snr_db", "phy")
        assert rows == [0.0, 8.0]
        assert cols == ["dsss-1", "dsss-2"]
        assert all(v is not None for row in grid for v in row)

    def test_pivot_without_columns(self):
        rows, cols, grid = pivot(self.records(), "per", "phy")
        assert rows == ["dsss-1", "dsss-2"]
        assert len(grid[0]) == 1

    def test_format_pivot_lines(self):
        lines = format_pivot(self.records(), "per", "snr_db", "phy",
                             title="t")
        assert lines[0] == "t"
        assert "dsss-1" in lines[1]
        assert len(lines) == 4  # title + header + 2 rows

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            pivot(self.records(), "per", "nonsense")


class TestCampaignCli:
    def run_cli(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def test_run_ls_show_report(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps({
            **quick_spec().to_dict(),
            "meta": {"report": {"value": "per", "rows": "snr_db",
                                "cols": "phy"}},
        }))
        results = str(tmp_path / "results")
        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results, "--report") == 0
        out = capsys.readouterr().out
        assert "4 points" in out and "4 executed" in out
        assert "snr_db \\ phy" in out

        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results) == 0
        assert "4 cached (100%) | 0 executed" in capsys.readouterr().out

        assert self.run_cli("campaign", "ls", "--results", results) == 0
        assert "tiny" in capsys.readouterr().out

        assert self.run_cli("campaign", "show", "tiny",
                            "--results", results) == 0
        out = capsys.readouterr().out
        assert "kind=link" in out and "factor phy" in out

        assert self.run_cli("campaign", "report", "tiny",
                            "--results", results) == 0
        assert "dsss-2" in capsys.readouterr().out

    def test_ls_empty_store_suggests_builtins(self, tmp_path, capsys):
        assert self.run_cli("campaign", "ls",
                            "--results", str(tmp_path / "none")) == 0
        assert "e3-dsss-cck" in capsys.readouterr().out

    def test_report_without_defaults_errors(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(quick_spec().to_dict()))
        results = str(tmp_path / "results")
        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results) == 0
        capsys.readouterr()
        assert self.run_cli("campaign", "report", "tiny",
                            "--results", results) == 2
        assert "--value" in capsys.readouterr().out
