"""Tests for the repro.campaign sweep orchestrator."""

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.campaign import (CampaignSpec, ResultsStore, builtin_campaign,
                            builtin_campaigns, failure_lines, format_pivot,
                            load_spec, make_store, pivot, point_key,
                            point_kinds, run_campaign)
from repro.campaign.runner import register_point_kind
from repro.campaign.seeding import (attempt_generator, attempt_seed,
                                    point_generator, point_seed)
from repro.errors import ConfigurationError, PointExecutionError


# Module-level point functions: picklable, so they can be shipped to
# pool workers under any multiprocessing start method.

def _double_point(params, rng):
    return {"double": 2 * params["x"]}


def _chaos_point(params, rng):
    """Raise on odd x, hang on the designated x, else draw from rng."""
    x = int(params["x"])
    if x % 2:
        raise ValueError(f"odd point x={x}")
    if x == int(params.get("hang_at", -1)):
        time.sleep(30.0)
    return {"draw": float(rng.integers(0, 1 << 30))}


def _flaky_counted_point(params, rng):
    """Fail the first ``fail_first`` calls per point, counted on disk."""
    path = os.path.join(params["counter_dir"], f"{params['x']}.count")
    n = int(open(path).read()) if os.path.exists(path) else 0
    with open(path, "w") as fh:
        fh.write(str(n + 1))
    if n < int(params.get("fail_first", 0)):
        raise RuntimeError(f"transient failure #{n}")
    return {"draw": float(rng.integers(0, 1 << 30))}


def _late_emitter_point(params, rng):
    """x == 0 overruns its timeout, then emits telemetry after the fact."""
    if params["x"] == 0:
        time.sleep(0.4)
        obs.counter("late.marker")
        with obs.span("late.span"):
            pass
        return {"late": 1}
    time.sleep(0.05)
    return {"late": 0}


def _append_stress_worker(root, backend, name, worker_id, n_records,
                          pad_bytes):
    """Append ``n_records`` oversized records from one child process.

    The pad pushes every line far past any stdio buffer, so a store
    whose append isn't a single atomic write interleaves torn lines
    under this load.
    """
    from repro.campaign.store import make_store as _make_store
    store = _make_store(root, backend)
    pad = f"w{worker_id}-" + "x" * pad_bytes
    for i in range(n_records):
        store.append(name, {
            "key": f"w{worker_id:02d}-r{i:03d}",
            "index": worker_id * n_records + i,
            "outcome": "ok",
            "metrics": {"i": i, "pad": pad},
        })
    store.close()


register_point_kind("test-double", _double_point, code_version="1")
register_point_kind("test-chaos", _chaos_point, code_version="1")
register_point_kind("test-flaky", _flaky_counted_point, code_version="1")
register_point_kind("test-late", _late_emitter_point, code_version="1")


def quick_spec(**overrides):
    """A four-point link campaign small enough for unit tests."""
    fields = dict(
        name="tiny", kind="link",
        factors={"phy": ["dsss-1", "dsss-2"], "snr_db": [0.0, 8.0]},
        fixed={"channel": "awgn", "n_packets": 3, "payload_bytes": 20},
        base_seed=3,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestSpec:
    def test_expansion_order_and_params(self):
        points = quick_spec().expand()
        assert [p.index for p in points] == [0, 1, 2, 3]
        # Last factor varies fastest.
        assert [(p.params["phy"], p.params["snr_db"]) for p in points] == [
            ("dsss-1", 0.0), ("dsss-1", 8.0),
            ("dsss-2", 0.0), ("dsss-2", 8.0),
        ]
        assert all(p.params["channel"] == "awgn" for p in points)
        assert quick_spec().n_points == 4

    def test_rejects_factor_fixed_overlap(self):
        with pytest.raises(ConfigurationError):
            quick_spec(fixed={"phy": "cck-11"})

    def test_rejects_empty_factor(self):
        with pytest.raises(ConfigurationError):
            quick_spec(factors={"phy": []})

    def test_rejects_scalar_factor_value(self):
        with pytest.raises(ConfigurationError):
            quick_spec(factors={"phy": "dsss-1"})

    def test_rejects_unsafe_name(self):
        with pytest.raises(ConfigurationError):
            quick_spec(name="../escape")

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ConfigurationError):
            quick_spec(factors={"phy": [["nested"]]})

    def test_json_roundtrip(self, tmp_path):
        spec = quick_spec()
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_json(path)
        assert loaded == spec
        assert load_spec(str(path)) == spec

    def test_load_spec_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            load_spec("no-such-campaign")

    def test_builtins_expand(self):
        names = set(builtin_campaigns())
        assert {"e3-dsss-cck", "e4-ofdm", "e6-mimo-range"} <= names
        for name in names:
            spec = builtin_campaign(name)
            assert spec.n_points == len(spec.expand())
            assert spec.kind in point_kinds()

    def test_unknown_builtin(self):
        with pytest.raises(ConfigurationError):
            builtin_campaign("e99-nope")


class TestSeeding:
    def test_point_seed_is_stateless_and_order_free(self):
        a = [point_seed(7, i).generate_state(4).tolist() for i in (3, 0, 2)]
        b = [point_seed(7, i).generate_state(4).tolist() for i in (3, 0, 2)]
        assert a == b
        assert a[0] != a[1] != a[2]

    def test_matches_seedsequence_spawn(self):
        spawned = np.random.SeedSequence(7).spawn(4)
        for i, child in enumerate(spawned):
            assert (point_seed(7, i).generate_state(4).tolist()
                    == child.generate_state(4).tolist())

    def test_point_generator_reproducible(self):
        x = point_generator(1, 2).integers(0, 1 << 30, 8)
        y = point_generator(1, 2).integers(0, 1 << 30, 8)
        assert (x == y).all()


class TestCacheKey:
    def test_stable_under_dict_order(self):
        k1 = point_key("link", "1", 0, 2, {"a": 1, "b": 2.5})
        k2 = point_key("link", "1", 0, 2, {"b": 2.5, "a": 1})
        assert k1 == k2

    @pytest.mark.parametrize("change", [
        {"kind": "dcf"}, {"code_version": "2"}, {"base_seed": 1},
        {"index": 3}, {"params": {"a": 2, "b": 2.5}},
    ])
    def test_sensitive_to_every_field(self, change):
        base = dict(kind="link", code_version="1", base_seed=0, index=2,
                    params={"a": 1, "b": 2.5})
        changed = dict(base)
        changed.update(change)
        assert point_key(**base) != point_key(**changed)


class TestRunner:
    def test_serial_run_produces_ordered_ok_records(self):
        result = run_campaign(quick_spec())
        assert result.n_points == 4
        assert result.n_executed == 4
        assert result.n_cached == 0
        assert [r["index"] for r in result.records] == [0, 1, 2, 3]
        assert all(r["outcome"] == "ok" for r in result.records)
        assert all(0.0 <= r["metrics"]["per"] <= 1.0 for r in result.records)

    def test_parallel_bit_identical_to_serial(self, tmp_path):
        spec = quick_spec()
        serial = run_campaign(spec, workers=1,
                              store=ResultsStore(tmp_path / "s1"))
        parallel = run_campaign(spec, workers=2,
                                store=ResultsStore(tmp_path / "s2"))
        assert serial.metrics_by_index() == parallel.metrics_by_index()
        # and the parallel run really left this process
        assert os.getpid() not in {r["worker"] for r in parallel.records}

    def test_rerun_is_all_cache_hits(self, tmp_path):
        spec = quick_spec()
        store = ResultsStore(tmp_path)
        first = run_campaign(spec, store=store)
        second = run_campaign(spec, store=store)
        assert second.n_executed == 0
        assert second.n_cached == first.n_points
        assert second.cache_hit_rate == 1.0
        assert all(r["cached"] for r in second.records)
        assert second.metrics_by_index() == first.metrics_by_index()

    def test_seed_change_invalidates_cache(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_campaign(quick_spec(), store=store)
        reseeded = run_campaign(quick_spec(base_seed=99), store=store)
        assert reseeded.n_executed == 4

    def test_force_recomputes(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_campaign(quick_spec(), store=store)
        forced = run_campaign(quick_spec(), store=store, force=True)
        assert forced.n_executed == 4
        # Store stays clean: still one record per key after the rewrite.
        assert len(store.load("tiny")) == 4

    def test_grid_growth_reuses_common_prefix_only(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_campaign(quick_spec(), store=store)
        # Appending a value to the *last* factor renumbers indices 2..,
        # so only the first phy's points survive the cache.
        grown = run_campaign(
            quick_spec(factors={"phy": ["dsss-1", "dsss-2"],
                                "snr_db": [0.0, 8.0, 16.0]}),
            store=store)
        assert grown.n_cached == 2
        assert grown.n_executed == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(quick_spec(kind="quantum"))

    def test_point_failure_is_recorded_not_raised(self, tmp_path):
        spec = CampaignSpec(
            name="mixed", kind="link",
            factors={"phy": ["dsss-1", "warp-9"]},
            fixed={"channel": "awgn", "snr_db": 5.0,
                   "n_packets": 2, "payload_bytes": 10},
        )
        result = run_campaign(spec, store=ResultsStore(tmp_path))
        outcomes = {r["params"]["phy"]: r["outcome"] for r in result.records}
        assert outcomes == {"dsss-1": "ok", "warp-9": "error"}
        # Failures are not served from cache: the bad point retries.
        again = run_campaign(spec, store=ResultsStore(tmp_path))
        assert again.n_executed == 1

    def test_custom_point_kind(self):
        register_point_kind(
            "echo", lambda params, rng: {"double": 2 * params["x"]},
            code_version="1")
        spec = CampaignSpec(name="echo-test", kind="echo",
                            factors={"x": [1, 2, 3]})
        result = run_campaign(spec)
        assert [r["metrics"]["double"] for r in result.records] == [2, 4, 6]

    def test_mimo_range_and_dcf_kinds_run(self):
        mimo = run_campaign(CampaignSpec(
            name="mimo-mini", kind="mimo-range",
            factors={"antennas": ["1x1", "2x2"]},
            fixed={"n_draws": 200, "outage": 0.05}))
        margins = [r["metrics"]["margin_db"] for r in mimo.records]
        assert margins[0] > margins[1]  # diversity shrinks the margin
        dcf = run_campaign(CampaignSpec(
            name="dcf-mini", kind="dcf",
            factors={"n_stations": [2]},
            fixed={"duration": 0.02}))
        assert dcf.records[0]["metrics"]["throughput_mbps"] > 0


class TestStore:
    def test_append_load_roundtrip_dedupes(self, tmp_path):
        store = ResultsStore(tmp_path)
        rec = {"key": "k1", "index": 0, "outcome": "ok",
               "metrics": {"per": 0.5}, "cached": False}
        store.append("c", rec)
        store.append("c", {**rec, "metrics": {"per": 0.25}})
        loaded = store.load("c")
        assert len(loaded) == 1
        assert loaded[0]["metrics"]["per"] == 0.25  # last write wins
        assert "cached" not in loaded[0]

    def test_surface_kind_registered(self):
        """The surrogate builder's record kind ships with the runner."""
        assert "surface-link" in point_kinds()

    def test_roundtrip_nested_ci_arrays_and_nonfinite(self, tmp_path):
        """Surface records carry nested CI arrays; non-finite entries
        must round-trip as None, not corrupt the JSONL store."""
        store = ResultsStore(tmp_path)
        rec = {
            "key": "surf0", "index": 0, "outcome": "ok",
            "kind": "surface-link",
            "metrics": {
                "per": 0.25,
                "per_ci": [[0.1, 0.4], [0.0, float("nan")]],
                "tails": {"ber_ci_high": float("inf"),
                          "n_trials": 80,
                          "nested": [{"lo": float("-inf"), "hi": 1.0}]},
            },
        }
        store.append("surf", rec)
        loaded = store.load("surf")[0]
        assert loaded["metrics"]["per"] == 0.25
        assert loaded["metrics"]["per_ci"] == [[0.1, 0.4], [0.0, None]]
        assert loaded["metrics"]["tails"]["ber_ci_high"] is None
        assert loaded["metrics"]["tails"]["n_trials"] == 80
        assert loaded["metrics"]["tails"]["nested"] == [
            {"lo": None, "hi": 1.0}]
        # The file itself must stay strict JSON, line by line.
        with open(store._records_path("surf")) as fh:
            for line in fh:
                json.loads(line)

    def test_torn_tail_line_ignored(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("c", {"key": "k1", "index": 0, "outcome": "ok"})
        with open(store._records_path("c"), "a") as fh:
            fh.write('{"key": "k2", "trunc')
        assert len(store.load("c")) == 1

    def test_campaigns_listing(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.campaigns() == []
        run_campaign(quick_spec(), store=store)
        assert store.campaigns() == [("tiny", 4)]
        assert store.load_spec("tiny") == quick_spec()

    def test_missing_spec_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultsStore(tmp_path).load_spec("ghost")


class TestReport:
    def records(self):
        return run_campaign(quick_spec()).records

    def test_pivot_values(self):
        rows, cols, grid = pivot(self.records(), "per", "snr_db", "phy")
        assert rows == [0.0, 8.0]
        assert cols == ["dsss-1", "dsss-2"]
        assert all(v is not None for row in grid for v in row)

    def test_pivot_without_columns(self):
        rows, cols, grid = pivot(self.records(), "per", "phy")
        assert rows == ["dsss-1", "dsss-2"]
        assert len(grid[0]) == 1

    def test_format_pivot_lines(self):
        lines = format_pivot(self.records(), "per", "snr_db", "phy",
                             title="t")
        assert lines[0] == "t"
        assert "dsss-1" in lines[1]
        assert len(lines) == 4  # title + header + 2 rows

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            pivot(self.records(), "per", "nonsense")

    def test_link_records_carry_error_bars(self):
        """Every mc-backed metric ships its CI and trial count."""
        for record in self.records():
            metrics = record["metrics"]
            assert (metrics["per_ci_low"] <= metrics["per"]
                    <= metrics["per_ci_high"])
            assert (metrics["ber_ci_low"] <= metrics["ber"]
                    <= metrics["ber_ci_high"])
            assert metrics["n_trials"] == metrics["n_packets"] == 3
            assert metrics["stop_reason"] == "budget"
            assert metrics["confidence"] == 0.95

    def test_format_pivot_renders_ci_cells(self):
        lines = format_pivot(self.records(), "per", "snr_db", "phy")
        # Cells look like "0.3333 [0.0177, 0.7914]".
        assert "[" in lines[-1] and "]" in lines[-1]
        plain = format_pivot(self.records(), "per", "snr_db", "phy",
                             ci=False)
        assert "[" not in plain[-1]

    def test_adaptive_campaign_points(self):
        result = run_campaign(quick_spec(
            fixed={"channel": "awgn", "n_packets": 3, "payload_bytes": 20,
                   "precision": 0.5, "max_trials": 200},
        ))
        for record in result.records:
            metrics = record["metrics"]
            assert metrics["stop_reason"] in ("precision", "max_trials")
            assert metrics["n_trials"] <= 200

    def test_summary_counts_mc_trials(self):
        from repro.campaign.report import summary_lines
        lines = summary_lines(self.records(), name="tiny")
        assert any("MC trials" in line and "budget" in line
                   for line in lines)


class TestCampaignCli:
    def run_cli(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def test_run_ls_show_report(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps({
            **quick_spec().to_dict(),
            "meta": {"report": {"value": "per", "rows": "snr_db",
                                "cols": "phy"}},
        }))
        results = str(tmp_path / "results")
        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results, "--report") == 0
        out = capsys.readouterr().out
        assert "4 points" in out and "4 executed" in out
        assert "snr_db \\ phy" in out

        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results) == 0
        assert "4 cached (100%) | 0 executed" in capsys.readouterr().out

        assert self.run_cli("campaign", "ls", "--results", results) == 0
        assert "tiny" in capsys.readouterr().out

        assert self.run_cli("campaign", "show", "tiny",
                            "--results", results) == 0
        out = capsys.readouterr().out
        assert "kind=link" in out and "factor phy" in out

        assert self.run_cli("campaign", "report", "tiny",
                            "--results", results) == 0
        assert "dsss-2" in capsys.readouterr().out

    def test_ls_empty_store_suggests_builtins(self, tmp_path, capsys):
        assert self.run_cli("campaign", "ls",
                            "--results", str(tmp_path / "none")) == 0
        assert "e3-dsss-cck" in capsys.readouterr().out

    def test_report_without_defaults_errors(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(quick_spec().to_dict()))
        results = str(tmp_path / "results")
        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results) == 0
        capsys.readouterr()
        assert self.run_cli("campaign", "report", "tiny",
                            "--results", results) == 2
        assert "--value" in capsys.readouterr().out


class TestFailureSpec:
    def test_retry_timeout_json_roundtrip(self, tmp_path):
        spec = quick_spec(retries=2, timeout_s=1.5)
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_json(path)
        assert loaded == spec
        assert loaded.retries == 2
        assert loaded.timeout_s == 1.5

    def test_old_specs_load_with_defaults(self, tmp_path):
        data = quick_spec().to_dict()
        del data["retries"], data["timeout_s"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data))
        loaded = CampaignSpec.from_json(path)
        assert loaded.retries == 0
        assert loaded.timeout_s is None

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "2"])
    def test_rejects_bad_retries(self, bad):
        with pytest.raises(ConfigurationError):
            quick_spec(retries=bad)

    @pytest.mark.parametrize("bad", [0, -3.0, float("nan"),
                                     float("inf"), True, "1"])
    def test_rejects_bad_timeout(self, bad):
        with pytest.raises(ConfigurationError):
            quick_spec(timeout_s=bad)

    def test_rejects_non_finite_params(self):
        with pytest.raises(ConfigurationError):
            quick_spec(fixed={"channel": "awgn", "bad": float("nan")})
        with pytest.raises(ConfigurationError):
            quick_spec(factors={"snr_db": [0.0, float("inf")]})


class TestRetrySeeding:
    def test_attempt_zero_is_the_point_stream(self):
        for index in (0, 3):
            assert (attempt_seed(7, index, 0).generate_state(4).tolist()
                    == point_seed(7, index).generate_state(4).tolist())

    def test_attempts_are_distinct_and_stateless(self):
        states = [attempt_seed(7, 2, k).generate_state(4).tolist()
                  for k in (0, 1, 2)]
        assert states[0] != states[1] != states[2] != states[0]
        again = [attempt_seed(7, 2, k).generate_state(4).tolist()
                 for k in (0, 1, 2)]
        assert states == again

    def test_rejects_negative_attempt(self):
        with pytest.raises(ValueError):
            attempt_seed(7, 2, -1)


class TestFaultIsolation:
    def chaos_spec(self, **overrides):
        fields = dict(name="chaos", kind="test-chaos",
                      factors={"x": [0, 1, 2, 3]}, base_seed=5)
        fields.update(overrides)
        return CampaignSpec(**fields)

    def test_unexpected_exception_recorded_not_raised(self):
        result = run_campaign(self.chaos_spec())
        assert result.n_points == 4
        assert all(r is not None for r in result.records)
        by_x = {r["params"]["x"]: r for r in result.records}
        assert by_x[0]["outcome"] == "ok"
        assert by_x[1]["outcome"] == "error"
        assert by_x[1]["error_type"] == "ValueError"
        assert "odd point x=1" in by_x[1]["error"]
        assert "ValueError" in by_x[1]["traceback"]
        assert by_x[1]["attempts"] == 1
        assert by_x[1]["metrics"] == {}

    def test_pool_survives_failing_points(self, tmp_path):
        spec = self.chaos_spec()
        result = run_campaign(spec, workers=2, store=ResultsStore(tmp_path))
        assert result.n_points == 4
        outcomes = [r["outcome"] for r in result.records]
        assert outcomes == ["ok", "error", "ok", "error"]
        # Failure records round-trip through the store with traceback.
        stored = {r["index"]: r for r in ResultsStore(tmp_path).load("chaos")}
        assert "ValueError" in stored[1]["traceback"]

    def test_retry_exhaustion_counts_attempts(self):
        result = run_campaign(self.chaos_spec(retries=2))
        failed = {r["params"]["x"]: r for r in result.records
                  if r["outcome"] == "error"}
        assert all(r["attempts"] == 3 for r in failed.values())

    def test_retry_rng_is_deterministic(self, tmp_path):
        spec = CampaignSpec(
            name="flaky", kind="test-flaky",
            factors={"x": [0, 1]},
            fixed={"counter_dir": str(tmp_path), "fail_first": 1},
            base_seed=9, retries=1,
        )
        result = run_campaign(spec)
        for record in result.records:
            assert record["outcome"] == "ok"
            assert record["attempts"] == 2
            # Attempt 1 drew from SeedSequence(base, spawn_key=(i, 1)).
            expected = float(attempt_generator(9, record["index"], 1)
                             .integers(0, 1 << 30))
            assert record["metrics"]["draw"] == expected

    def test_first_try_success_bit_identical_to_no_retries(self, tmp_path):
        base = run_campaign(self.chaos_spec())
        retried = run_campaign(self.chaos_spec(retries=3))
        for a, b in zip(base.records, retried.records):
            if a["outcome"] == "ok":
                assert a["metrics"] == b["metrics"]

    def test_timeout_marks_point_and_moves_on(self):
        spec = self.chaos_spec(factors={"x": [0, 2, 4]},
                               fixed={"hang_at": 4}, timeout_s=0.3)
        start = time.perf_counter()
        result = run_campaign(spec)
        assert time.perf_counter() - start < 10.0
        by_x = {r["params"]["x"]: r for r in result.records}
        assert by_x[0]["outcome"] == "ok"
        assert by_x[2]["outcome"] == "ok"
        assert by_x[4]["outcome"] == "timeout"
        assert by_x[4]["error_type"] == "TimeoutError"
        assert by_x[4]["attempts"] == 1  # timeouts are not retried

    def test_acceptance_scenario_pool_retry_timeout_rerun(self, tmp_path):
        """ValueError on half the points + one hang, at --workers 4."""
        spec = CampaignSpec(
            name="accept", kind="test-chaos",
            factors={"x": [0, 1, 2, 3, 4, 5]},
            fixed={"hang_at": 4}, base_seed=21, timeout_s=0.5,
        )
        store = ResultsStore(tmp_path)
        result = run_campaign(spec, workers=4, store=store)
        assert result.n_points == 6
        by_x = {r["params"]["x"]: r for r in result.records}
        assert {x: r["outcome"] for x, r in by_x.items()} == {
            0: "ok", 1: "error", 2: "ok", 3: "error", 4: "timeout",
            5: "error"}
        for x in (1, 3, 5):
            assert "ValueError" in by_x[x]["traceback"]
            assert by_x[x]["attempts"] == 1
        # Successful points are bit-identical to the plain per-point
        # stream a serial pre-change run used.
        for x in (0, 2):
            expected = float(point_generator(21, by_x[x]["index"])
                             .integers(0, 1 << 30))
            assert by_x[x]["metrics"]["draw"] == expected
        # A re-run recomputes exactly the failed points.
        again = run_campaign(spec, workers=4, store=store)
        assert again.n_cached == 2
        assert again.n_executed == 4
        assert again.n_failed == 4

    def test_check_raises_point_execution_error(self):
        result = run_campaign(self.chaos_spec())
        with pytest.raises(PointExecutionError) as err:
            result.check()
        assert err.value.index == 1
        assert err.value.params["x"] == 1
        assert err.value.attempts == 1
        assert err.value.outcome == "error"
        ok = run_campaign(CampaignSpec(name="fine", kind="test-double",
                                       factors={"x": [1]}))
        assert ok.check() is ok

    def test_run_campaign_overrides_spec_budgets(self, tmp_path):
        spec = CampaignSpec(
            name="flaky2", kind="test-flaky",
            factors={"x": [0]},
            fixed={"counter_dir": str(tmp_path), "fail_first": 1},
            base_seed=9,
        )
        assert run_campaign(spec).n_failed == 1
        for f in os.listdir(tmp_path):
            os.unlink(os.path.join(tmp_path, f))
        assert run_campaign(spec, retries=1).n_failed == 0


class TestSpawnStartMethod:
    def test_custom_kind_survives_spawn_workers(self):
        spec = CampaignSpec(name="spawn-test", kind="test-double",
                            factors={"x": [1, 2]})
        result = run_campaign(spec, workers=2, start_method="spawn")
        assert [r["outcome"] for r in result.records] == ["ok", "ok"]
        assert [r["metrics"]["double"] for r in result.records] == [2, 4]
        assert os.getpid() not in {r["worker"] for r in result.records}


class TestStoreHardening:
    @pytest.mark.parametrize("bad", ["../evil", "a/b", "..", ".hidden",
                                     "", "a b"])
    def test_rejects_unsafe_campaign_names(self, tmp_path, bad):
        store = ResultsStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.campaign_dir(bad)
        with pytest.raises(ConfigurationError):
            store.load(bad)

    def test_keyless_and_torn_lines_skipped(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("c", {"key": "k1", "index": 0, "outcome": "ok"})
        with open(store._records_path("c"), "a") as fh:
            fh.write(json.dumps({"index": 5, "outcome": "ok"}) + "\n")
            fh.write(json.dumps({"key": "", "index": 6}) + "\n")
            fh.write('{"key": "k2", "trunc')
        loaded = store.load("c")
        assert len(loaded) == 1
        assert loaded[0]["key"] == "k1"

    def test_numpy_scalars_sanitized(self, tmp_path):
        """Regression: ``np.float32("nan")`` is not a ``float`` subclass,
        so the old finiteness check waved it through to
        ``json.dumps(allow_nan=False)``, which raised and dropped the
        record. Numpy leaves must normalize before the check."""
        store = ResultsStore(tmp_path)
        store.append("c", {"key": "k1", "index": 0, "outcome": "ok",
                           "metrics": {"nan32": np.float32("nan"),
                                       "inf32": np.float32("inf"),
                                       "n": np.int64(7),
                                       "flag": np.bool_(True),
                                       "f64": np.float64(0.25),
                                       "arr": np.array([1.0, np.nan])}})
        metrics = store.load("c")[0]["metrics"]
        assert metrics["nan32"] is None
        assert metrics["inf32"] is None
        assert metrics["n"] == 7
        assert metrics["flag"] is True
        assert metrics["f64"] == 0.25
        assert metrics["arr"] == [1.0, None]
        # And the persisted line is plain, strict JSON.
        with open(store._records_path("c")) as fh:
            json.loads(fh.read())

    def test_non_finite_metrics_stored_as_null(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("c", {"key": "k1", "index": 0, "outcome": "ok",
                           "metrics": {"nan": float("nan"),
                                       "inf": float("inf"),
                                       "fine": 1.5,
                                       "nested": [float("-inf"), 2.0]}})
        with open(store._records_path("c")) as fh:
            text = fh.read()
        assert "NaN" not in text and "Infinity" not in text
        metrics = store.load("c")[0]["metrics"]
        assert metrics["nan"] is None
        assert metrics["inf"] is None
        assert metrics["fine"] == 1.5
        assert metrics["nested"] == [None, 2.0]


class TestConcurrentAppend:
    """Multi-process append stress: no torn lines, no lost records."""

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_parallel_appends_never_tear(self, tmp_path, backend):
        n_workers, n_records, pad_bytes = 4, 20, 64_000
        context = multiprocessing.get_context(
            os.environ.get("REPRO_CAMPAIGN_START_METHOD") or None)
        procs = [
            context.Process(
                target=_append_stress_worker,
                args=(str(tmp_path), backend, "stress", w, n_records,
                      pad_bytes))
            for w in range(n_workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = make_store(str(tmp_path), backend)
        try:
            records = store.load("stress")
            assert len(records) == n_workers * n_records
            assert len({r["key"] for r in records}) == n_workers * n_records
            assert all(len(r["metrics"]["pad"]) > pad_bytes
                       for r in records)
            if backend == "jsonl":
                # Every non-empty raw line must be complete JSON — a
                # buffered text handle tears 64KB lines under exactly
                # this load. Blank lines are permitted: the appender's
                # torn-tail healing can emit one when a concurrent
                # writer's size update races its last-byte probe, and
                # the reader skips them by design.
                with open(store._records_path("stress")) as fh:
                    payload_lines = [line for line in fh if line.strip()]
                for line in payload_lines:
                    json.loads(line)
                assert len(payload_lines) == n_workers * n_records
        finally:
            store.close()


class TestAbandonedTimeoutThread:
    def test_overrunning_point_cannot_emit_late_telemetry(self, tmp_path):
        """Regression: a timed-out point's thread keeps running after the
        runner gives up on it. Its late counters/spans used to land in
        the ambient tracer mid-run — phantom events attributed to
        whatever point was current by then."""
        from repro.obs import read_trace
        spec = CampaignSpec(
            name="late", kind="test-late",
            factors={"x": list(range(13))}, base_seed=11,
            timeout_s=0.15,
        )
        store = ResultsStore(tmp_path)
        result = run_campaign(spec, store=store, trace=True)
        by_x = {r["params"]["x"]: r for r in result.records}
        assert by_x[0]["outcome"] == "timeout"
        assert all(by_x[x]["outcome"] == "ok" for x in range(1, 13))
        # The straggler emitted ~0.25s after its deadline, while later
        # points were still tracing — none of it may reach the trace.
        events = read_trace(store.trace_path("late"))
        assert not [e for e in events if e["name"] == "late.span"]
        counters = result.extras["trace"]["counters"]
        assert "late.marker" not in counters


class TestFailureReporting:
    def test_pivot_excludes_booleans(self):
        records = [
            {"outcome": "ok", "params": {"x": 1},
             "metrics": {"flag": True, "v": 2.0}},
            {"outcome": "ok", "params": {"x": 2},
             "metrics": {"flag": False, "v": 4.0}},
        ]
        _, _, grid = pivot(records, "flag", "x")
        assert grid == [[None], [None]]
        _, _, grid = pivot(records, "v", "x")
        assert grid == [[2.0], [4.0]]

    def test_failure_lines_table(self):
        result = run_campaign(CampaignSpec(
            name="chaos", kind="test-chaos", factors={"x": [0, 1]},
            base_seed=5))
        lines = failure_lines(result.records)
        text = "\n".join(lines)
        assert "1 failed point(s)" in lines[0]
        assert "ValueError" in text
        assert "x=1" in text
        assert "attempt(s)" in text
        assert failure_lines([r for r in result.records
                              if r["outcome"] == "ok"]) == []


class TestFailureCli:
    def run_cli(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def failing_spec_path(self, tmp_path, meta=None):
        path = tmp_path / "chaos.json"
        spec = CampaignSpec(name="chaos", kind="test-chaos",
                            factors={"x": [0, 1]}, base_seed=5,
                            meta=meta or {})
        path.write_text(json.dumps(spec.to_dict()))
        return str(path)

    def test_run_exits_nonzero_and_prints_failures(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        assert self.run_cli("campaign", "run",
                            self.failing_spec_path(tmp_path),
                            "--results", results) == 1
        out = capsys.readouterr().out
        assert "1 failed point(s)" in out
        assert "ValueError" in out

    def test_show_failures_flag(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        self.run_cli("campaign", "run", self.failing_spec_path(tmp_path),
                     "--results", results)
        capsys.readouterr()
        assert self.run_cli("campaign", "show", "chaos", "--failures",
                            "--results", results) == 0
        out = capsys.readouterr().out
        assert "1 error" in out and "ValueError" in out

    def test_report_with_all_points_failed(self, tmp_path, capsys):
        spec_path = tmp_path / "allbad.json"
        spec = CampaignSpec(
            name="allbad", kind="test-chaos", factors={"x": [1, 3]},
            base_seed=5,
            meta={"report": {"value": "draw", "rows": "x"}})
        spec_path.write_text(json.dumps(spec.to_dict()))
        results = str(tmp_path / "results")
        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results, "--report") == 1
        out = capsys.readouterr().out
        assert "no report:" in out
        assert "2 failed point(s)" in out

    def test_run_retry_flag_recovers_flaky_point(self, tmp_path, capsys):
        counter_dir = tmp_path / "counts"
        counter_dir.mkdir()
        spec_path = tmp_path / "flaky.json"
        spec = CampaignSpec(
            name="flaky", kind="test-flaky", factors={"x": [0]},
            fixed={"counter_dir": str(counter_dir), "fail_first": 1},
            base_seed=9)
        spec_path.write_text(json.dumps(spec.to_dict()))
        results = str(tmp_path / "results")
        assert self.run_cli("campaign", "run", str(spec_path),
                            "--results", results, "--retries", "1") == 0
        assert "1 executed" in capsys.readouterr().out


class TestTrace:
    """run_campaign(trace=True): per-point spans, merge, cached re-runs."""

    def _point_spans(self, events):
        return [e for e in events if e["type"] == "span"
                and e["name"] == "campaign.point"]

    def test_traced_run_has_span_per_point(self, tmp_path):
        from repro.obs import read_trace
        spec = quick_spec()
        store = ResultsStore(tmp_path)
        result = run_campaign(spec, store=store, trace=True)
        trace_path = store.trace_path("tiny")
        assert trace_path is not None
        assert result.extras["trace_path"] == trace_path
        points = self._point_spans(read_trace(trace_path))
        assert len(points) == spec.n_points
        assert all(not p["attrs"]["cached"] for p in points)
        summary = result.extras["trace"]
        assert summary["counters"]["campaign.cache.miss"] == spec.n_points

    def test_traced_parallel_run_merges_worker_parts(self, tmp_path):
        # The spawn CI matrix runs this file under every start method,
        # so this also proves spawn workers' part files reach the merge.
        from repro.obs import read_trace
        spec = quick_spec()
        store = ResultsStore(tmp_path)
        result = run_campaign(spec, workers=2, store=store, trace=True)
        events = read_trace(store.trace_path("tiny"))
        assert len(self._point_spans(events)) == spec.n_points
        execs = [e for e in events if e["type"] == "span"
                 and e["name"] == "campaign.execute"]
        assert len(execs) == spec.n_points
        # Worker-side spans carry the pool pids, not the parent's.
        worker_pids = {r["worker"] for r in result.records}
        assert os.getpid() not in worker_pids
        assert worker_pids <= {e["pid"] for e in events}
        # Part files were consumed; only the merged trace remains.
        assert os.listdir(store.trace_dir("tiny")) == ["trace.jsonl"]

    def test_cached_rerun_still_emits_point_spans(self, tmp_path):
        from repro.obs import read_trace
        spec = quick_spec()
        store = ResultsStore(tmp_path)
        run_campaign(spec, store=store)
        rerun = run_campaign(spec, store=store, trace=True)
        # Cache hits cost no compute and say so explicitly.
        assert all(r["wall_time_s"] == 0.0 for r in rerun.records)
        points = self._point_spans(read_trace(store.trace_path("tiny")))
        assert len(points) == spec.n_points
        assert all(p["attrs"]["cached"] for p in points)
        hits = rerun.extras["trace"]["counters"]["campaign.cache.hit"]
        assert hits == spec.n_points

    def test_untraced_run_leaves_no_trace(self, tmp_path):
        store = ResultsStore(tmp_path)
        result = run_campaign(quick_spec(), store=store)
        assert store.trace_path("tiny") is None
        assert "trace" not in result.extras
