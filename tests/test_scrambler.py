"""Tests for the 802.11 scrambler."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.scrambler import (
    descramble,
    scramble,
    scrambler_sequence,
    sequence_period,
)
from repro.utils.bits import random_bits


class TestSequence:
    def test_period_is_127(self):
        assert sequence_period() == 127

    def test_standard_prefix_all_ones_seed(self):
        # First 16 outputs for the all-ones seed per 802.11a Annex G.
        expected = [0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]
        assert scrambler_sequence(16, seed=0x7F).tolist() == expected

    def test_balanced_over_period(self):
        seq = scrambler_sequence(127)
        # A maximal-length 7-bit LFSR emits 64 ones and 63 zeros.
        assert int(seq.sum()) == 64

    @pytest.mark.parametrize("seed", [0, 128, -1])
    def test_invalid_seed_rejected(self, seed):
        with pytest.raises(ConfigurationError):
            scrambler_sequence(10, seed=seed)

    def test_different_seeds_differ(self):
        a = scrambler_sequence(64, seed=0x7F)
        b = scrambler_sequence(64, seed=0x01)
        assert not np.array_equal(a, b)


class TestScramble:
    def test_involution(self, rng):
        bits = random_bits(500, rng)
        assert np.array_equal(descramble(scramble(bits)), bits)

    def test_seed_mismatch_breaks(self, rng):
        bits = random_bits(500, rng)
        wrong = descramble(scramble(bits, seed=0x5D), seed=0x7F)
        assert not np.array_equal(wrong, bits)

    def test_whitens_constant_input(self):
        zeros = np.zeros(254, dtype=np.int8)
        out = scramble(zeros)
        assert 0.3 < out.mean() < 0.7
