"""Tests for 802.11b PLCP framing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.dsss_ppdu import HrDsssPpdu, crc16_ccitt


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(31)
    return bytes(rng.integers(0, 256, 100, dtype=np.uint8).tolist())


class TestCrc16:
    def test_deterministic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0])
        assert crc16_ccitt(bits) == crc16_ccitt(bits)

    def test_detects_flip(self):
        bits = np.zeros(32, dtype=np.int8)
        flipped = bits.copy()
        flipped[5] = 1
        assert crc16_ccitt(bits) != crc16_ccitt(flipped)

    def test_16_bit_range(self):
        assert 0 <= crc16_ccitt(np.ones(32)) < 1 << 16


class TestRoundTrip:
    @pytest.mark.parametrize("rate", [1, 2, 5.5, 11])
    def test_clean(self, rate, message):
        ppdu = HrDsssPpdu(rate)
        assert ppdu.receive(ppdu.transmit(message)) == message

    @pytest.mark.parametrize("n_bytes", [1, 3, 7, 10, 11, 13, 100])
    def test_length_extension_cases(self, n_bytes):
        """Every byte count must survive the us-quantised LENGTH field."""
        rng = np.random.default_rng(n_bytes)
        msg = bytes(rng.integers(0, 256, n_bytes, dtype=np.uint8).tolist())
        ppdu = HrDsssPpdu(11)
        assert ppdu.receive(ppdu.transmit(msg)) == msg

    def test_noise_resilience(self, message, rng):
        ppdu = HrDsssPpdu(11)
        wave = ppdu.transmit(message)
        noisy = wave + np.sqrt(0.05) * (
            rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)
        )
        assert ppdu.receive(noisy) == message

    def test_phase_rotation_tolerated(self, message):
        ppdu = HrDsssPpdu(5.5)
        wave = ppdu.transmit(message) * np.exp(1j * 0.9)
        assert ppdu.receive(wave) == message


class TestFraming:
    def test_header_always_192us(self):
        assert HrDsssPpdu(11).preamble_header_duration_s() == pytest.approx(
            192e-6
        )

    def test_1000_bytes_at_11mbps_duration(self):
        """The textbook figure: ~919 us for 1000 B at '11 Mbps'."""
        assert HrDsssPpdu(11).frame_duration_s(1000) == pytest.approx(
            919e-6, abs=2e-6
        )

    def test_preamble_dominates_small_frames(self):
        ppdu = HrDsssPpdu(11)
        assert (ppdu.preamble_header_duration_s()
                / ppdu.frame_duration_s(50) > 0.8)

    def test_rate_mismatch_detected(self, message):
        wave = HrDsssPpdu(11).transmit(message)
        with pytest.raises(DemodulationError, match="announces"):
            HrDsssPpdu(5.5).receive(wave)

    def test_header_corruption_detected(self, message, rng):
        ppdu = HrDsssPpdu(11)
        wave = ppdu.transmit(message)
        # Blast the header region (bits 144..192 -> chips ~1600..2100).
        bad = wave.copy()
        bad[1650:1900] = -bad[1650:1900]
        with pytest.raises(DemodulationError):
            ppdu.receive(bad)

    def test_truncated_waveform_rejected(self, message):
        ppdu = HrDsssPpdu(11)
        wave = ppdu.transmit(message)
        with pytest.raises(DemodulationError):
            ppdu.receive(wave[: wave.size // 2])

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            HrDsssPpdu(22)
