"""Tests for repro.utils.crc (802.11 FCS)."""

from repro.utils.crc import append_fcs, check_fcs, crc32


class TestCrc32:
    def test_known_vector(self):
        # The canonical CRC-32 check value.
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    def test_matches_zlib(self):
        import zlib

        for data in [b"hello", b"\x00" * 64, bytes(range(100))]:
            assert crc32(data) == zlib.crc32(data)


class TestFcs:
    def test_round_trip(self):
        frame = append_fcs(b"payload bytes")
        assert check_fcs(frame)

    def test_detects_corruption(self):
        frame = bytearray(append_fcs(b"payload bytes"))
        frame[3] ^= 0x40
        assert not check_fcs(bytes(frame))

    def test_detects_fcs_corruption(self):
        frame = bytearray(append_fcs(b"payload"))
        frame[-1] ^= 0x01
        assert not check_fcs(bytes(frame))

    def test_short_frame(self):
        assert not check_fcs(b"ab")
