"""Tests for adaptive bit loading."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.mimo.bitloading import (
    CONSTELLATION_SNR_DB,
    greedy_loading,
    loaded_rate_mbps,
    threshold_loading,
    uniform_vs_loaded,
)


class TestThresholdLoading:
    def test_low_snr_gets_zero_bits(self):
        assert threshold_loading([0.0])[0] == 0

    def test_high_snr_gets_64qam(self):
        assert threshold_loading([40.0])[0] == 6

    def test_monotone_in_snr(self):
        bits = threshold_loading([5.0, 11.0, 15.0, 21.0, 30.0])
        assert list(bits) == sorted(bits)

    def test_margin_is_conservative(self):
        snr = CONSTELLATION_SNR_DB[4] + 1.0
        assert threshold_loading([snr], margin_db=0.0)[0] == 4
        assert threshold_loading([snr], margin_db=3.0)[0] < 4


class TestGreedyLoading:
    def test_respects_power_budget(self, rng):
        gains = rng.uniform(0.3, 2.0, 16)
        bits, powers = greedy_loading(gains, total_power=10.0,
                                      target_bits=64)
        assert powers.sum() <= 10.0 + 1e-9
        assert np.all(powers >= 0)

    def test_strong_tones_loaded_first(self):
        gains = np.array([2.0, 0.1])
        bits, _ = greedy_loading(gains, total_power=5.0, target_bits=4)
        assert bits[0] >= bits[1]

    def test_hits_target_when_budget_ample(self):
        gains = np.ones(8)
        bits, _ = greedy_loading(gains, total_power=1e6, target_bits=24)
        assert bits.sum() == 24

    def test_zero_gain_tone_skipped(self):
        gains = np.array([1.0, 0.0])
        bits, _ = greedy_loading(gains, total_power=1e6, target_bits=8)
        assert bits[1] == 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_loading(np.array([1.0]), total_power=0.0, target_bits=2)


class TestComparisons:
    def test_loading_beats_uniform_on_selective_channel(self, rng):
        """The closed-loop payoff only exists when the channel is
        frequency selective."""
        selective = rng.uniform(5.0, 30.0, 48)
        out = uniform_vs_loaded(selective)
        assert out["gain"] >= 1.0
        assert out["loaded_bits_per_symbol"] >= out["uniform_bits_per_symbol"]

    def test_flat_channel_no_gain(self):
        out = uniform_vs_loaded(np.full(48, 20.0))
        assert out["gain"] == pytest.approx(1.0)

    def test_rate_formula(self):
        bits = np.full(48, 6)
        # 288 coded bits * 3/4 over 4 us = 54 Mbps.
        assert loaded_rate_mbps(bits) == pytest.approx(54.0)
