"""Tests for the Alamouti-OFDM transmit-diversity PHY."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.mimo.stbc_ofdm import StbcOfdmPhy
from repro.phy.ofdm import OfdmPhy


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(77)
    return bytes(rng.integers(0, 256, 120, dtype=np.uint8).tolist())


def _flat_mimo(tx, n_rx, rng):
    h = (rng.normal(size=(n_rx, 2)) + 1j * rng.normal(size=(n_rx, 2)))
    h /= np.sqrt(2)
    return h @ tx, h


class TestRoundTrip:
    @pytest.mark.parametrize("rate,n_rx", [(6, 1), (12, 1), (24, 2),
                                           (54, 2)])
    def test_flat_mimo_clean(self, rate, n_rx, message, rng):
        phy = StbcOfdmPhy(rate, n_rx=n_rx)
        y, _ = _flat_mimo(phy.transmit(message), n_rx, rng)
        assert phy.receive(y, 1e-9, psdu_bytes=len(message)) == message

    def test_multipath(self, message, rng):
        phy = StbcOfdmPhy(12, n_rx=2)
        tx = phy.transmit(message)
        taps = (rng.normal(size=(2, 2, 3))
                + 1j * rng.normal(size=(2, 2, 3))) / np.sqrt(6)
        y = np.zeros((2, tx.shape[1]), dtype=complex)
        for r in range(2):
            for t in range(2):
                y[r] += np.convolve(tx[t], taps[r, t])[: tx.shape[1]]
        nv = 1e-3
        y = y + np.sqrt(nv / 2) * (rng.normal(size=y.shape)
                                   + 1j * rng.normal(size=y.shape))
        assert phy.receive(y, nv, psdu_bytes=len(message)) == message

    def test_waveform_shape(self, message):
        phy = StbcOfdmPhy(6)
        tx = phy.transmit(message)
        assert tx.shape == (2, phy.n_samples(len(message)))

    def test_total_power_split(self, message):
        """Per-antenna data power is half, total matches SISO OFDM."""
        tx = StbcOfdmPhy(24).transmit(message)
        total = np.mean(np.abs(tx) ** 2) * 2
        assert total == pytest.approx(1.0, rel=0.15)


class TestDiversity:
    def test_stbc_beats_siso_in_fading(self, message):
        """The paper's range claim, waveform level: at equal average SNR in
        per-packet Rayleigh, 2x1 STBC drops far fewer packets than SISO."""
        rng = np.random.default_rng(123)
        snr_db = 13.0
        nv = 10 ** (-snr_db / 10)
        n_trials = 25
        siso_fails = stbc_fails = 0
        siso = OfdmPhy(6)
        stbc = StbcOfdmPhy(6, n_rx=1)
        for _ in range(n_trials):
            h = (rng.normal() + 1j * rng.normal()) / np.sqrt(2)
            wave = siso.transmit(message)
            y = h * wave + np.sqrt(nv / 2) * (
                rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)
            )
            try:
                siso_fails += siso.receive(y, nv) != message
            except DemodulationError:
                siso_fails += 1
            tx = stbc.transmit(message)
            y2, _ = _flat_mimo(tx, 1, rng)
            y2 = y2 + np.sqrt(nv / 2) * (
                rng.normal(size=y2.shape) + 1j * rng.normal(size=y2.shape)
            )
            try:
                stbc_fails += stbc.receive(
                    y2, nv, psdu_bytes=len(message)) != message
            except DemodulationError:
                stbc_fails += 1
        assert stbc_fails <= siso_fails
        assert siso_fails > 0  # the operating point is genuinely fady

    def test_channel_estimate_accuracy(self, message, rng):
        phy = StbcOfdmPhy(6, n_rx=2)
        tx = phy.transmit(message)
        y, h = _flat_mimo(tx, 2, rng)
        est = phy.estimate_channel(y[:, : 2 * 80])
        assert np.allclose(est[0], h, atol=1e-8)
        assert np.allclose(est[20], h, atol=1e-8)


class TestValidation:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            StbcOfdmPhy(33)

    def test_rx_count_enforced(self, message):
        phy = StbcOfdmPhy(6, n_rx=2)
        with pytest.raises(DemodulationError):
            phy.receive(np.ones((1, 2000), complex), 1e-3)

    def test_even_symbol_count(self, message):
        phy = StbcOfdmPhy(54)
        assert phy.n_symbols(len(message)) % 2 == 0

    def test_short_waveform_rejected(self):
        phy = StbcOfdmPhy(6)
        with pytest.raises(DemodulationError):
            phy.receive(np.ones((1, 100), complex), 1e-3)
