"""Tests for repro.utils.conversion."""

import numpy as np
import pytest

from repro.utils.conversion import (
    db_to_linear,
    dbm_to_watts,
    ebn0_to_snr_db,
    linear_to_db,
    snr_db_to_ebn0,
    watts_to_dbm,
)


class TestDbLinear:
    def test_known_values(self):
        assert db_to_linear(0) == pytest.approx(1.0)
        assert db_to_linear(10) == pytest.approx(10.0)
        assert db_to_linear(-3) == pytest.approx(0.501, abs=1e-3)

    def test_inverse(self):
        values = np.array([0.01, 1.0, 42.0])
        assert np.allclose(db_to_linear(linear_to_db(values)), values)

    def test_vectorised(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        assert np.allclose(out, [1.0, 10.0, 100.0])


class TestDbmWatts:
    def test_known_values(self):
        assert dbm_to_watts(0) == pytest.approx(1e-3)
        assert dbm_to_watts(30) == pytest.approx(1.0)
        assert watts_to_dbm(0.1) == pytest.approx(20.0)

    def test_inverse(self):
        assert watts_to_dbm(dbm_to_watts(17.0)) == pytest.approx(17.0)


class TestEbn0Snr:
    def test_bpsk_identity(self):
        # 1 bit/symbol, rate 1, 1 sample/symbol: SNR == Eb/N0.
        assert ebn0_to_snr_db(5.0, 1) == pytest.approx(5.0)

    def test_qpsk_offset(self):
        assert ebn0_to_snr_db(5.0, 2) == pytest.approx(5.0 + 10 * np.log10(2))

    def test_code_rate(self):
        # Rate-1/2 coding halves info bits per symbol.
        assert ebn0_to_snr_db(5.0, 2, code_rate=0.5) == pytest.approx(5.0)

    def test_spreading(self):
        # 11 samples per symbol (Barker) costs 10.4 dB of per-sample SNR.
        out = ebn0_to_snr_db(5.0, 1, samples_per_symbol=11)
        assert out == pytest.approx(5.0 - 10 * np.log10(11))

    def test_round_trip(self):
        snr = ebn0_to_snr_db(7.3, 4, code_rate=0.75, samples_per_symbol=2)
        back = snr_db_to_ebn0(snr, 4, code_rate=0.75, samples_per_symbol=2)
        assert back == pytest.approx(7.3)
