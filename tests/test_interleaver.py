"""Tests for the 802.11a and 802.11n interleavers."""

import numpy as np
import pytest

from repro.errors import CodingError
from repro.phy.interleaver import (
    deinterleave,
    ht_deinterleave,
    ht_interleave,
    ht_interleave_permutation,
    interleave,
    interleave_permutation,
)
from repro.utils.bits import random_bits

LEGACY_CASES = [(48, 1), (96, 2), (192, 4), (288, 6)]


class TestLegacyInterleaver:
    @pytest.mark.parametrize("n_cbps,n_bpsc", LEGACY_CASES)
    def test_permutation_is_bijective(self, n_cbps, n_bpsc):
        perm = interleave_permutation(n_cbps, n_bpsc)
        assert sorted(perm.tolist()) == list(range(n_cbps))

    @pytest.mark.parametrize("n_cbps,n_bpsc", LEGACY_CASES)
    def test_round_trip(self, n_cbps, n_bpsc, rng):
        bits = random_bits(3 * n_cbps, rng)
        out = deinterleave(interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
        assert np.array_equal(out, bits)

    def test_adjacent_bits_separated(self):
        """First permutation must spread adjacent coded bits >= 3 carriers."""
        perm = interleave_permutation(48, 1)
        positions = np.empty(48, dtype=int)
        positions[perm] = np.arange(48)
        # Adjacent input bits land 16 columns apart in the 48-bit symbol.
        assert interleave(np.arange(48), 48, 1)[0] in range(48)
        out = interleave(np.arange(48), 48, 1)
        idx0 = np.where(out == 0)[0][0]
        idx1 = np.where(out == 1)[0][0]
        assert abs(idx1 - idx0) >= 3

    def test_partial_symbol_raises(self):
        with pytest.raises(CodingError):
            interleave(np.zeros(50), 48, 1)

    def test_works_on_soft_values(self, rng):
        soft = rng.normal(size=96)
        out = deinterleave(interleave(soft, 96, 2), 96, 2)
        assert np.allclose(out, soft)


class TestHtInterleaver:
    @pytest.mark.parametrize("n_bpsc", [1, 2, 4, 6])
    @pytest.mark.parametrize("bw", [20, 40])
    def test_permutation_is_bijective(self, n_bpsc, bw):
        perm = ht_interleave_permutation(n_bpsc, bw)
        n = 52 * n_bpsc if bw == 20 else 108 * n_bpsc
        assert perm.size == n
        assert sorted(perm.tolist()) == list(range(n))

    @pytest.mark.parametrize("n_bpsc", [1, 2, 4, 6])
    def test_round_trip_20mhz(self, n_bpsc, rng):
        bits = random_bits(2 * 52 * n_bpsc, rng)
        out = ht_deinterleave(ht_interleave(bits, n_bpsc), n_bpsc)
        assert np.array_equal(out, bits)

    def test_round_trip_40mhz(self, rng):
        bits = random_bits(108 * 4, rng)
        out = ht_deinterleave(ht_interleave(bits, 4, 40), 4, 40)
        assert np.array_equal(out, bits)

    def test_partial_symbol_raises(self):
        with pytest.raises(CodingError):
            ht_interleave(np.zeros(51), 1)
