"""Cross-layer integration tests.

Each test wires several subsystems together the way the examples and
benchmarks do, pinning the end-to-end behaviours a downstream user relies
on.
"""

import numpy as np
import pytest

from repro.analysis.linkbudget import LinkBudget
from repro.channel.models import tgn_channel
from repro.core.link import LinkSimulator
from repro.mac.dcf import DcfSimulator
from repro.mac.timing import MacTiming
from repro.mesh.network import MeshNetwork
from repro.mesh.topology import line_positions
from repro.phy.mimo.ht import HtPhy
from repro.phy.ofdm import OfdmPhy
from repro.phy.sync import apply_cfo, synchronise
from repro.standards.registry import get_standard


class TestWaveformThroughChannelObjects:
    """PHY waveforms through the channel package's objects (not ad-hoc
    convolutions)."""

    def test_ofdm_through_tgn_tdl(self, rng):
        msg = bytes(rng.integers(0, 256, 120, dtype=np.uint8).tolist())
        phy = OfdmPhy(18)
        tdl = tgn_channel("D", n_rx=1, n_tx=1, rng=rng)
        rx = tdl.apply(phy.transmit(msg)[None, :])
        nv = 1e-3
        rx = rx + np.sqrt(nv / 2) * (
            rng.normal(size=rx.shape) + 1j * rng.normal(size=rx.shape)
        )
        assert phy.receive(rx.ravel(), nv) == msg

    def test_ht_through_tgn_tdl(self, rng):
        msg = bytes(rng.integers(0, 256, 120, dtype=np.uint8).tolist())
        phy = HtPhy(mcs=9, n_rx=2)
        tdl = tgn_channel("C", n_rx=2, n_tx=2, rng=rng)
        rx = tdl.apply(phy.transmit(msg))
        nv = 1e-3
        rx = rx + np.sqrt(nv / 2) * (
            rng.normal(size=rx.shape) + 1j * rng.normal(size=rx.shape)
        )
        assert phy.receive(rx, nv, psdu_bytes=len(msg)) == msg

    def test_sync_plus_tdl_plus_decode(self, rng):
        """Full receiver chain: unknown delay + CFO + multipath."""
        msg = bytes(rng.integers(0, 256, 80, dtype=np.uint8).tolist())
        phy = OfdmPhy(12)
        wave = apply_cfo(phy.transmit(msg), 60e3)
        tdl = tgn_channel("B", rng=rng)
        faded = tdl.apply(wave[None, :]).ravel()
        rx = np.concatenate([np.zeros(211, complex), faded])
        nv = float(np.mean(np.abs(faded) ** 2)) / 10 ** (22 / 10)
        rx = rx + np.sqrt(nv / 2) * (
            rng.normal(size=rx.size) + 1j * rng.normal(size=rx.size)
        )
        aligned, info = synchronise(rx)
        assert abs(info["total_cfo_hz"] - 60e3) < 5e3
        assert phy.receive(aligned, nv) == msg


class TestBudgetDrivenConsistency:
    """Link budget, registry and mesh agree with the link simulator."""

    def test_registry_thresholds_are_achievable_on_waveforms(self):
        """At (threshold + 4 dB) every 802.11a rate's real transceiver
        should decode reliably — the registry is a conservative
        abstraction of the waveform PHY."""
        std = get_standard("802.11a")
        for entry in std.rates:
            sim = LinkSimulator(f"ofdm-{int(entry.rate_mbps)}", "awgn",
                                rng=3)
            result = sim.run(entry.required_snr_db + 4.0, n_packets=8,
                             payload_bytes=60)
            assert result.per <= 0.25, entry.rate_mbps

    def test_mesh_link_rates_match_budget_snr(self):
        budget = LinkBudget()
        net = MeshNetwork(line_positions(2, 25.0), budget=budget)
        snr = budget.snr_at(25.0)
        expected = get_standard("802.11a").rate_at_snr(snr).rate_mbps
        assert net.link_rate_mbps(0, 1) == expected

    def test_range_and_coverage_agree(self):
        budget = LinkBudget()
        radius = budget.range_for_snr(12.0)  # 6 Mbps threshold
        net = MeshNetwork(line_positions(2, radius * 0.95), budget=budget)
        assert net.link_rate_mbps(0, 1) is not None
        net_far = MeshNetwork(line_positions(2, radius * 1.05),
                              budget=budget)
        assert net_far.link_rate_mbps(0, 1) is None


class TestMacPhyConsistency:
    def test_mac_airtime_matches_phy_duration(self):
        """MAC timing's OFDM airtime equals the waveform PHY's duration
        (minus the MAC-header bytes it adds)."""
        timing = MacTiming.for_standard("802.11a")
        phy = OfdmPhy(24)
        psdu = 500 + 28  # payload + MAC header + FCS
        assert timing.data_airtime_s(500, 24) == pytest.approx(
            phy.frame_duration_s(psdu)
        )

    def test_dcf_never_exceeds_airtime_bound(self):
        """Goodput can't beat payload/(success exchange time)."""
        timing = MacTiming.for_standard("802.11a")
        bound = 8 * 1500 / timing.success_duration_s(1500, 54) / 1e6
        result = DcfSimulator(1, "802.11a", 54, 1500, rng=1).run(0.3)
        assert result.throughput_mbps <= bound * 1.01

    def test_faster_phy_generation_more_mac_throughput(self):
        r11b = DcfSimulator(5, "802.11b", 11, 1500, rng=2).run(0.3)
        r11a = DcfSimulator(5, "802.11a", 54, 1500, rng=2).run(0.3)
        assert r11a.throughput_mbps > 2 * r11b.throughput_mbps
