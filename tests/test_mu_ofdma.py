"""Tests for MU-MIMO downlink (ZF precoding) and the OFDMA RU model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.mimo.mu import MuMimoDownlink, mu_su_throughput, zf_precoders
from repro.phy.ofdma import (
    RU_COUNTS,
    RU_DATA_TONES,
    aggregate_rate_mbps,
    largest_equal_ru,
    ru_data_rate_mbps,
    schedule,
)
from repro.standards.mcs import get_family


def _rayleigh(rng, shape):
    return (rng.normal(size=shape)
            + 1j * rng.normal(size=shape)) / np.sqrt(2)


class TestZfPrecoders:
    def test_zero_forcing_property(self, rng):
        """H_u W_v is (a scaled) identity for v == u and ~0 otherwise."""
        h = _rayleigh(rng, (3, 16, 1, 4))
        w = zf_precoders(h)
        for u in range(3):
            for v in range(3):
                prod = np.einsum("cst,ctu->csu", h[u], w[v])
                if u == v:
                    assert np.min(np.abs(prod)) > 1e-6
                else:
                    assert np.max(np.abs(prod)) < 1e-10

    def test_unit_total_power(self, rng):
        w = zf_precoders(_rayleigh(rng, (2, 8, 2, 4)))
        # (n_users, n_sc, n_tx, s) -> per-subcarrier power over users.
        power = np.sum(np.abs(w) ** 2, axis=(0, 2, 3))
        assert np.allclose(power, 1.0)

    def test_overloaded_array_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            zf_precoders(_rayleigh(rng, (3, 4, 2, 4)))

    def test_bad_shape_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            zf_precoders(_rayleigh(rng, (3, 4, 4)))


class TestMuMimoDownlink:
    def test_three_users_decode_own_psdus(self, rng):
        dl = MuMimoDownlink(n_users=3, n_tx=4, mcs=2)
        h = _rayleigh(rng, (3, dl.n_data_sc, 1, 4))
        psdus = [bytes(rng.integers(0, 256, 40, dtype=np.uint8))
                 for _ in range(3)]
        assert dl.transmit(psdus, h).shape[0] == 4
        noise_var = 1e-7
        # Frequency-flat channels so the channel can be applied in the
        # time domain (a per-tone channel would need per-tone filtering).
        flat = _rayleigh(rng, (3, 1, 1, 4))
        h_flat = np.broadcast_to(flat, (3, dl.n_data_sc, 1, 4)).copy()
        tx = dl.transmit(psdus, h_flat)
        for u in range(3):
            rx = flat[u, 0] @ tx  # (1, n_samples)
            rx = rx + np.sqrt(noise_var / 2) * (
                rng.normal(size=rx.shape) + 1j * rng.normal(size=rx.shape)
            )
            assert dl.receive_user(u, rx, noise_var,
                                   psdu_bytes=40) == psdus[u]

    def test_two_users_two_streams(self, rng):
        dl = MuMimoDownlink(n_users=2, n_tx=4, mcs=3, spatial_streams=2)
        flat = _rayleigh(rng, (2, 1, 2, 4))
        h = np.broadcast_to(flat, (2, dl.n_data_sc, 2, 4)).copy()
        psdus = [bytes(rng.integers(0, 256, 60, dtype=np.uint8))
                 for _ in range(2)]
        tx = dl.transmit(psdus, h)
        noise_var = 1e-7
        for u in range(2):
            rx = flat[u, 0] @ tx
            rx = rx + np.sqrt(noise_var / 2) * (
                rng.normal(size=rx.shape) + 1j * rng.normal(size=rx.shape)
            )
            assert dl.receive_user(u, rx, noise_var,
                                   psdu_bytes=60) == psdus[u]

    def test_too_many_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            MuMimoDownlink(n_users=3, n_tx=4, spatial_streams=2)

    def test_mismatched_psdu_count_rejected(self, rng):
        dl = MuMimoDownlink(n_users=2, n_tx=4)
        h = _rayleigh(rng, (2, dl.n_data_sc, 1, 4))
        with pytest.raises(ConfigurationError):
            dl.transmit([b"only one"], h)

    def test_unequal_symbol_counts_rejected(self, rng):
        dl = MuMimoDownlink(n_users=2, n_tx=4, mcs=0)
        h = _rayleigh(rng, (2, dl.n_data_sc, 1, 4))
        with pytest.raises(ConfigurationError):
            dl.transmit([b"x", bytes(500)], h)

    def test_bad_user_index_rejected(self):
        dl = MuMimoDownlink(n_users=2, n_tx=4)
        with pytest.raises(DemodulationError):
            dl.receive_user(2, np.zeros((1, 10)), 1e-3)


class TestMuSuThroughput:
    def test_orthogonal_channels_favor_mu(self):
        """With orthogonal user channels ZF costs nothing: MU serves
        all users at once while TDMA pays the 1/U airtime split."""
        h = np.eye(4)
        out = mu_su_throughput(h, snr_db=40.0)
        assert out["gain"] > 1.0
        assert out["mu_mbps"] > out["su_mbps"]

    def test_su_beats_mu_when_users_align(self):
        # Nearly colinear channels make ZF pay a huge power penalty.
        h = np.array([[1.0, 0.0, 0.0, 0.0],
                      [0.999, 0.0447, 0.0, 0.0]])
        out = mu_su_throughput(h, snr_db=20.0)
        assert out["su_mbps"] >= out["mu_mbps"]

    def test_per_user_snr_shapes(self, rng):
        h = _rayleigh(rng, (3, 8))
        out = mu_su_throughput(h, snr_db=30.0)
        assert out["mu_user_snr_db"].shape == (3,)
        assert out["su_user_snr_db"].shape == (3,)
        # MRT SNR always beats the ZF post-precoding SNR per user.
        assert np.all(out["su_user_snr_db"] >= out["mu_user_snr_db"])

    def test_overloaded_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            mu_su_throughput(_rayleigh(rng, (5, 4)), snr_db=30.0)


class TestOfdmaRates:
    def test_ru26_mcs0_long_gi(self):
        # 24 data tones x 1 bit x 1/2 over 16 us = 0.75 Mbps.
        assert ru_data_rate_mbps(26, 0, guard_interval="long") == (
            pytest.approx(0.75)
        )

    def test_ru242_mcs11(self):
        # 234 x 10 x 5/6 / 13.6 us = 143.4 Mbps (the published figure).
        assert ru_data_rate_mbps(242, 11) == pytest.approx(143.4, abs=0.1)

    def test_full_channel_ru_matches_family_table(self):
        fam = get_family("HE")
        for ru, bw in ((242, 20), (484, 40), (996, 80), (1992, 160)):
            assert ru_data_rate_mbps(ru, 7, 2) == pytest.approx(
                fam.mcs(7, 2).data_rate_mbps(bw, "short")
            )

    def test_unknown_ru_rejected(self):
        with pytest.raises(ConfigurationError):
            ru_data_rate_mbps(100, 0)

    def test_ru_data_tone_consistency(self):
        for size, data in RU_DATA_TONES.items():
            assert data < size


class TestOfdmaScheduler:
    def test_largest_equal_ru(self):
        assert largest_equal_ru(20, 1) == 242
        assert largest_equal_ru(20, 2) == 106
        assert largest_equal_ru(20, 9) == 26
        assert largest_equal_ru(80, 8) == 106
        assert largest_equal_ru(160, 2) == 996

    def test_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            largest_equal_ru(20, 10)
        with pytest.raises(ConfigurationError):
            largest_equal_ru(30, 2)

    def test_schedule_per_user_mcs(self):
        allocs = schedule(40, [11, 7, 0, 3])
        assert [a.user for a in allocs] == [0, 1, 2, 3]
        assert all(a.ru_tones == 106 for a in allocs)
        rates = [a.data_rate_mbps for a in allocs]
        assert rates[0] > rates[1] > rates[3] > rates[2]
        assert aggregate_rate_mbps(allocs) == pytest.approx(sum(rates))

    def test_empty_user_list_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule(20, [])

    def test_ofdma_splits_channel_rate(self):
        """Four 106-tone RUs carry less than one 484-tone channel at the
        same MCS (tone overheads), but within ~15% of it."""
        whole = ru_data_rate_mbps(484, 7)
        split = aggregate_rate_mbps(schedule(40, [7, 7, 7, 7]))
        assert split < whole
        assert split / whole > 0.85

    def test_ru_counts_tile_the_channel(self):
        # Equal-size RU tilings never exceed the channel's tone budget.
        total_tones = {20: 242, 40: 484, 80: 996, 160: 1992}
        for bw, counts in RU_COUNTS.items():
            for size, count in counts.items():
                assert size * count <= total_tones[bw] + 8 * (count - 1)
