"""Kernel backend registry, numpy/numba parity, and hot-path caching.

The numba half of the parity matrix only runs where numba is installed
(the ``kernels-parity`` CI job); everywhere else those tests skip and
the numpy fallback — the reference arithmetic — is what's exercised.
"""

import os
import subprocess
import sys

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.errors import ConfigurationError
from repro.phy import convolutional as cc
from repro.phy import kernels
from repro.phy.ldpc import LdpcCode

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "goldens",
                            "phy_goldens.npz")

needs_numba = pytest.mark.skipif(not kernels.numba_available(),
                                 reason="numba not installed")


@pytest.fixture(autouse=True)
def _clean_backend_state():
    """Isolate override/env state so tests cannot leak into each other."""
    previous = kernels.set_backend(None)
    env = os.environ.pop("REPRO_KERNELS", None)
    yield
    kernels.set_backend(previous)
    if env is not None:
        os.environ["REPRO_KERNELS"] = env


class TestBackendRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_backends()

    def test_resolve_default_is_numpy_without_numba(self):
        if not kernels.numba_available():
            assert kernels.resolve_backend() == "numpy"

    def test_resolve_explicit_arg_wins(self):
        kernels.set_backend("auto")
        assert kernels.resolve_backend("numpy") == "numpy"

    def test_resolve_env(self):
        os.environ["REPRO_KERNELS"] = "numpy"
        assert kernels.resolve_backend() == "numpy"

    def test_override_beats_env(self):
        os.environ["REPRO_KERNELS"] = "auto"
        kernels.set_backend("numpy")
        assert kernels.resolve_backend() == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernels"):
            kernels.resolve_backend("fortran")
        with pytest.raises(ConfigurationError, match="unknown kernels"):
            kernels.set_backend("fortran")

    def test_use_backend_restores(self):
        with kernels.use_backend("numpy"):
            assert kernels.resolve_backend() == "numpy"
        assert kernels._OVERRIDE is None

    def test_numba_missing_is_clean_error(self):
        if kernels.numba_available():
            pytest.skip("numba installed here")
        with pytest.raises(ConfigurationError, match="repro\\[fast\\]"):
            kernels.require_backend("numba")
        with pytest.raises(ConfigurationError, match="repro\\[fast\\]"):
            kernels.set_backend("numba")

    def test_require_numpy_ok(self):
        assert kernels.require_backend("numpy") == "numpy"


class TestCliKernelsFlag:
    def test_link_kernels_numba_missing_exits_2(self):
        """`repro link --kernels numba` must fail cleanly, not traceback."""
        if kernels.numba_available():
            pytest.skip("numba installed here")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "link", "ofdm-6", "awgn", "20",
             "--packets", "1", "--bytes", "20", "--kernels", "numba"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                            os.pardir, "src")})
        assert proc.returncode == 2
        assert "error:" in proc.stderr
        assert "repro[fast]" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_link_kernels_numpy_runs(self, capsys):
        from repro.cli import main

        assert main(["link", "ofdm-6", "awgn", "20", "--packets", "2",
                     "--bytes", "20", "--kernels", "numpy"]) == 0
        assert "PER" in capsys.readouterr().out


def _random_soft(rng, n_info, rate, terminated=True):
    bits = rng.integers(0, 2, n_info).astype(np.uint8)
    coded = cc.puncture(cc.encode(bits, terminate=terminated), rate)
    soft = 1.0 - 2.0 * coded.astype(float)
    soft += 0.6 * rng.normal(size=soft.shape)
    return bits, soft


class TestNumpyDecoderEquivalence:
    """kernels_backend="numpy" must be THE decoder, not a sibling."""

    @pytest.mark.parametrize("rate", ["1/2", "2/3", "3/4"])
    def test_viterbi_backend_arg_is_noop(self, rate):
        rng = np.random.default_rng(5)
        _, soft = _random_soft(rng, 120, rate)
        assert_array_equal(
            cc.viterbi_decode(soft, 120, rate=rate),
            cc.viterbi_decode(soft, 120, rate=rate,
                              kernels_backend="numpy"))

    def test_viterbi_batch_and_env(self):
        rng = np.random.default_rng(6)
        soft = np.stack([_random_soft(rng, 80, "1/2")[1]
                         for _ in range(4)])
        base = cc.viterbi_decode(soft, 80)
        os.environ["REPRO_KERNELS"] = "numpy"
        assert_array_equal(base, cc.viterbi_decode(soft, 80))

    def test_ldpc_backend_arg_is_noop(self):
        rng = np.random.default_rng(7)
        code = LdpcCode.from_standard(648, "1/2")
        n_info = int(round(648 * code.rate))
        bits = rng.integers(0, 2, n_info).astype(np.uint8)
        llr = (1.0 - 2.0 * code.encode(bits).astype(float)
               + 0.8 * rng.normal(size=648))
        a = code.decode(llr, max_iterations=12)
        b = code.decode(llr, max_iterations=12, kernels_backend="numpy")
        assert a[1:] == b[1:]
        assert_array_equal(a[0], b[0])


@needs_numba
class TestNumbaParity:
    """Bit-exact numba-vs-numpy parity on random and golden vectors."""

    @pytest.mark.parametrize("rate", ["1/2", "2/3", "3/4", "5/6"])
    @pytest.mark.parametrize("terminated", [True, False])
    def test_viterbi_random(self, rate, terminated):
        rng = np.random.default_rng(11)
        for n_info in (24, 97, 200):
            _, soft = _random_soft(rng, n_info, rate, terminated)
            assert_array_equal(
                cc.viterbi_decode(soft, n_info, rate=rate,
                                  terminated=terminated,
                                  kernels_backend="numpy"),
                cc.viterbi_decode(soft, n_info, rate=rate,
                                  terminated=terminated,
                                  kernels_backend="numba"))

    def test_viterbi_batch(self):
        rng = np.random.default_rng(12)
        soft = np.stack([_random_soft(rng, 60, "3/4")[1]
                         for _ in range(5)])
        assert_array_equal(
            cc.viterbi_decode(soft, 60, rate="3/4",
                              kernels_backend="numpy"),
            cc.viterbi_decode(soft, 60, rate="3/4",
                              kernels_backend="numba"))

    @pytest.mark.parametrize("tag,rate", [("12", "1/2"), ("23", "2/3"),
                                          ("34", "3/4"), ("56", "5/6")])
    def test_viterbi_goldens(self, tag, rate):
        gold = np.load(GOLDENS_PATH)
        decoded = cc.viterbi_decode(gold[f"cc_soft_{tag}"], 500, rate=rate,
                                    kernels_backend="numba")
        assert_array_equal(decoded, gold[f"cc_dec_{tag}"])

    def test_min_sum_parity(self):
        rng = np.random.default_rng(13)
        code = LdpcCode.from_standard(648, "1/2")
        n_info = int(round(648 * code.rate))
        for snr_scale in (0.5, 0.9, 1.5):
            bits = rng.integers(0, 2, n_info).astype(np.uint8)
            llr = (1.0 - 2.0 * code.encode(bits).astype(float)
                   + snr_scale * rng.normal(size=648))
            a = code.decode(llr, max_iterations=20,
                            kernels_backend="numpy")
            b = code.decode(llr, max_iterations=20,
                            kernels_backend="numba")
            assert a[1:] == b[1:]
            assert_array_equal(a[0], b[0])

    def test_raw_kernel_parity(self):
        """Kernel-level parity, decisions and final metrics included."""
        rng = np.random.default_rng(14)
        llr_a = rng.normal(size=(3, 40))
        llr_b = rng.normal(size=(3, 40))
        d_np, m_np = kernels.viterbi_forward(
            llr_a, llr_b, cc._SIGN_A, cc._SIGN_B, backend="numpy")
        d_nb, m_nb = kernels.viterbi_forward(
            llr_a, llr_b, cc._SIGN_A, cc._SIGN_B, backend="numba")
        assert_array_equal(d_np, d_nb)
        assert_array_equal(m_np, m_nb)
        start = np.argmax(m_np, axis=1)
        assert_array_equal(
            kernels.viterbi_traceback(d_np, start, backend="numpy"),
            kernels.viterbi_traceback(d_np, start, backend="numba"))


class TestDecodePlanCache:
    """Repeated viterbi_decode calls must do no table construction."""

    def test_plan_cached_across_calls(self):
        rng = np.random.default_rng(21)
        _, soft = _random_soft(rng, 90, "2/3")
        cc.viterbi_decode(soft, 90, rate="2/3")  # warm
        before = cc._decode_plan.cache_info()
        for _ in range(5):
            cc.viterbi_decode(soft, 90, rate="2/3")
        after = cc._decode_plan.cache_info()
        assert after.misses == before.misses
        assert after.hits == before.hits + 5

    def test_plan_identity(self):
        """The cached plan is reused by object, not rebuilt per call."""
        plan_a = cc._decode_plan(64, "1/2", True)
        plan_b = cc._decode_plan(64, "1/2", True)
        assert plan_a[2] is plan_b[2]  # the puncture keep-mask array

    def test_micro_bench_no_rebuild(self):
        """Decoding twice must not be slower than decode + table build.

        A loose 'no table construction on the hot path' assertion:
        after warmup, per-call time with a cached plan stays within 3x
        of the fastest observed call (timer noise) — rebuilding the
        puncture mask and plan every call showed up as >5x here before
        the cache existed.
        """
        import time

        rng = np.random.default_rng(22)
        _, soft = _random_soft(rng, 200, "3/4")
        cc.viterbi_decode(soft, 200, rate="3/4")  # warm cache + numpy
        times = []
        for _ in range(5):
            t0 = time.perf_counter()
            cc.viterbi_decode(soft, 200, rate="3/4")
            times.append(time.perf_counter() - t0)
        assert min(times) > 0
        assert max(times) < 10 * min(times)
