"""Tests for the adaptive Monte-Carlo engine and its statistics.

Three layers of guarantees:

* interval mathematics (Wilson / Clopper–Pearson / accumulators);
* engine semantics (fixed budget vs adaptive stopping, determinism);
* bit-exactness regressions — the refactored simulators must reproduce
  the seed-era serial loops *exactly* at the same seeds, using golden
  values captured from the pre-refactor implementations.
"""

import numpy as np
import pytest

from repro.core.mc import (
    DEFAULT_MAX_TRIALS,
    MeanAccumulator,
    QuantileAccumulator,
    RateAccumulator,
    clopper_pearson_interval,
    rate_interval,
    run_trials,
    wilson_interval,
)
from repro.errors import ConfigurationError


class TestIntervals:
    def test_wilson_contains_point_estimate(self):
        lo, hi = wilson_interval(12, 100)
        assert lo < 0.12 < hi
        assert 0.0 <= lo <= hi <= 1.0

    def test_wilson_zero_events_exact_edge(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0.0 < hi < 0.1

    def test_wilson_all_events_exact_edge(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0
        assert 0.9 < lo < 1.0

    def test_wilson_narrows_with_n(self):
        w_small = np.diff(wilson_interval(5, 50))[0]
        w_large = np.diff(wilson_interval(500, 5000))[0]
        assert w_large < w_small

    def test_wilson_zero_upper_bound_scales(self):
        """0/100 and 0/100000 must report different upper bounds."""
        _, hi_small = wilson_interval(0, 100)
        _, hi_large = wilson_interval(0, 100_000)
        assert hi_large < hi_small / 100

    def test_clopper_pearson_wider_than_wilson(self):
        w = np.diff(wilson_interval(7, 80))[0]
        cp = np.diff(clopper_pearson_interval(7, 80))[0]
        assert cp > w

    def test_clopper_pearson_edges(self):
        assert clopper_pearson_interval(0, 50)[0] == 0.0
        assert clopper_pearson_interval(50, 50)[1] == 1.0

    def test_higher_confidence_wider(self):
        w95 = np.diff(wilson_interval(10, 100, 0.95))[0]
        w99 = np.diff(wilson_interval(10, 100, 0.99))[0]
        assert w99 > w95

    def test_dispatch(self):
        assert rate_interval(3, 30, method="wilson") == \
            wilson_interval(3, 30)
        assert rate_interval(3, 30, method="clopper-pearson") == \
            clopper_pearson_interval(3, 30)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            rate_interval(3, 30, method="wald")

    @pytest.mark.parametrize("k,n", [(-1, 10), (11, 10), (5, -1)])
    def test_bad_counts_rejected(self, k, n):
        with pytest.raises(ConfigurationError):
            wilson_interval(k, n)

    @pytest.mark.parametrize("conf", [0.0, 1.0, -0.5, 2.0])
    def test_bad_confidence_rejected(self, conf):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 10, conf)

    def test_empty_sample_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert clopper_pearson_interval(0, 0) == (0.0, 1.0)


class TestWilsonCoverageProperty:
    def test_nominal_coverage(self, rng):
        """A 95% Wilson interval must contain the true rate ~95% of the
        time; with 400 seeded ensembles the observed coverage should not
        dip below 90%."""
        p_true, n, hits, ensembles = 0.3, 80, 0, 400
        for _ in range(ensembles):
            k = int(rng.binomial(n, p_true))
            lo, hi = wilson_interval(k, n)
            hits += lo <= p_true <= hi
        assert hits / ensembles > 0.90


class TestAccumulators:
    def test_rate_streaming_equals_oneshot(self):
        a, b = RateAccumulator(), RateAccumulator()
        a.add(3, 10)
        a.add(2, 40)
        b.add(5, 50)
        assert a.estimate() == b.estimate() == 0.1
        assert a.interval() == b.interval()

    def test_rate_zero_events_infinite_relative_width(self):
        acc = RateAccumulator()
        acc.add(0, 1000)
        assert acc.rel_half_width() == float("inf")

    def test_mean_matches_numpy(self, rng):
        values = rng.normal(size=200)
        acc = MeanAccumulator()
        acc.add(values[:150])
        acc.add(values[150:])
        assert acc.estimate() == pytest.approx(values.mean())
        lo, hi = acc.interval()
        assert lo < values.mean() < hi

    def test_mean_vector_valued(self, rng):
        values = rng.normal(size=(50, 3))
        acc = MeanAccumulator()
        acc.add(values)
        assert np.allclose(acc.estimate(), values.mean(axis=0))

    def test_mean_single_trial_infinite_width(self):
        acc = MeanAccumulator()
        acc.add([1.5])
        assert acc.rel_half_width() == float("inf")

    def test_quantile_matches_numpy(self, rng):
        values = rng.normal(size=500)
        acc = QuantileAccumulator(0.1)
        acc.add(values[:200])
        acc.add(values[200:])
        assert acc.estimate() == pytest.approx(np.quantile(values, 0.1))
        lo, hi = acc.interval()
        assert lo <= acc.estimate() <= hi

    def test_quantile_bad_q_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileAccumulator(1.2)


class TestEngineFixedBudget:
    @staticmethod
    def bernoulli(rng):
        return {"event": int(rng.uniform() < 0.4),
                "extra": int(rng.uniform() < 0.5)}

    def test_preserves_draw_order(self):
        """The engine must consume a shared generator in exactly the
        order of a hand-rolled serial loop."""
        mc = run_trials(self.bernoulli, n_trials=300, target="event",
                        rng=np.random.default_rng(17))
        rng = np.random.default_rng(17)
        events = sum(self.bernoulli(rng)["event"] for _ in range(300))
        assert mc.n_events == events
        assert mc.n_trials == 300
        assert mc.stop_reason == "budget"

    def test_totals_carry_non_target_metrics(self):
        mc = run_trials(self.bernoulli, n_trials=100, target="event",
                        rng=np.random.default_rng(3))
        assert set(mc.totals) == {"event", "extra"}
        assert 0 <= mc.totals["extra"] <= 100
        assert mc.totals["event"] == mc.n_events

    def test_vectorized_single_batch(self):
        def batch(rng, m):
            return {"event": int(np.count_nonzero(rng.uniform(size=m)
                                                  < 0.25))}
        mc = run_trials(batch, n_trials=400, target="event",
                        rng=np.random.default_rng(5), vectorized=True)
        rng = np.random.default_rng(5)
        assert mc.n_events == int(np.count_nonzero(
            rng.uniform(size=400) < 0.25))

    def test_result_interval_matches_counts(self):
        mc = run_trials(self.bernoulli, n_trials=200, target="event",
                        rng=np.random.default_rng(8))
        assert mc.ci() == wilson_interval(mc.n_events, 200)
        assert mc.estimate == mc.n_events / 200

    def test_missing_target_rejected(self):
        with pytest.raises(ConfigurationError, match="target metric"):
            run_trials(lambda rng: {"other": 1}, n_trials=5,
                       target="event", rng=np.random.default_rng(0))

    def test_no_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            run_trials(self.bernoulli, target="event")

    def test_bad_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            run_trials(self.bernoulli, target="event", precision=-0.1)

    def test_bad_estimand_rejected(self):
        with pytest.raises(ConfigurationError):
            run_trials(self.bernoulli, n_trials=5, target="event",
                       estimand="median")

    def test_quantile_estimand_needs_q(self):
        with pytest.raises(ConfigurationError):
            run_trials(self.bernoulli, n_trials=5, target="event",
                       estimand="quantile")


class TestEngineAdaptive:
    @staticmethod
    def coin(rng):
        return {"event": int(rng.uniform() < 0.5)}

    def test_deterministic_at_fixed_seed(self):
        runs = [run_trials(self.coin, target="event",
                           rng=np.random.default_rng(99), precision=0.2,
                           batch_size=50) for _ in range(2)]
        assert runs[0].n_trials == runs[1].n_trials
        assert runs[0].estimate == runs[1].estimate
        assert runs[0].ci() == runs[1].ci()

    def test_stops_on_precision(self):
        mc = run_trials(self.coin, target="event",
                        rng=np.random.default_rng(1), precision=0.2,
                        batch_size=50)
        assert mc.stop_reason == "precision"
        assert mc.rel_half_width <= 0.2
        assert mc.n_trials < DEFAULT_MAX_TRIALS
        assert mc.n_trials % 50 == 0

    def test_zero_events_run_to_ceiling(self):
        """No events → no precision claim: the engine must burn the
        whole ceiling rather than stop on an empty estimate."""
        mc = run_trials(lambda rng: {"event": 0}, target="event",
                        rng=np.random.default_rng(2), precision=0.1,
                        max_trials=700, batch_size=100)
        assert mc.stop_reason == "max_trials"
        assert mc.n_trials == 700
        assert mc.estimate == 0.0
        assert mc.ci_high > 0.0

    def test_tighter_precision_needs_more_trials(self):
        loose = run_trials(self.coin, target="event",
                           rng=np.random.default_rng(4), precision=0.3,
                           batch_size=20)
        tight = run_trials(self.coin, target="event",
                           rng=np.random.default_rng(4), precision=0.05,
                           batch_size=20)
        assert tight.n_trials > loose.n_trials

    def test_adaptive_mean_estimand(self):
        mc = run_trials(lambda rng: {"v": float(rng.normal(10.0, 1.0))},
                        target="v", rng=np.random.default_rng(6),
                        precision=0.02, estimand="mean", batch_size=50)
        assert mc.stop_reason == "precision"
        assert mc.estimate == pytest.approx(10.0, abs=0.5)


# -- bit-exactness regressions ----------------------------------------------
#
# Golden values captured by running the pre-refactor (seed-era) serial
# loops at these exact seeds and budgets. The refactored engine-backed
# paths must reproduce them bit for bit.


class TestGoldenLink:
    def test_cck_awgn(self):
        from repro.core.link import LinkSimulator
        r = LinkSimulator("cck-5.5", "awgn", rng=123).run(2.0, 40, 25)
        assert (r.n_packet_errors, r.n_bit_errors) == (16, 31)

    def test_ofdm_rayleigh(self):
        from repro.core.link import LinkSimulator
        r = LinkSimulator("ofdm-12", "rayleigh", rng=77).run(14.0, 30, 40)
        assert (r.n_packet_errors, r.n_bit_errors) == (6, 693)


class TestGoldenRelay:
    def test_decode_and_forward(self):
        from repro.coop.relay import RelaySimulator
        r = RelaySimulator("df", rng=5).run(10.0, 60, 32)
        assert r.ber_direct == 0.027083333333333334
        assert r.ber_cooperative == 0.0067708333333333336
        assert r.outage_direct == 0.18333333333333332
        assert r.outage_cooperative == 0.06666666666666667
        assert r.relay_decode_rate == 0.8333333333333334

    def test_amplify_and_forward(self):
        from repro.coop.relay import RelaySimulator
        r = RelaySimulator("af", rng=9).run(8.0, 50, 32)
        assert r.ber_direct == 0.029375
        assert r.ber_cooperative == 0.015625
        assert r.outage_direct == 0.26
        assert r.outage_cooperative == 0.2
        assert r.relay_decode_rate == 1.0


class TestGoldenCodedCoop:
    def test_coded_cooperation(self):
        from repro.coop.coded import CodedCooperationSimulator
        r = CodedCooperationSimulator(info_bits=48, rng=3).run(2.0, 30)
        assert r.bler_direct == 0.3333333333333333
        assert r.bler_repetition == 0.06666666666666667
        assert r.bler_coded == 0.1
        assert r.relay_decode_rate == 0.7333333333333333


class TestGoldenCoverageAndCapacity:
    def test_coverage(self):
        from repro.mesh.coverage import coverage_fraction
        from repro.mesh.topology import grid_positions
        frac = coverage_fraction(grid_positions(2, 60.0) + 40.0, 200.0,
                                 n_samples=600, rng=2024)
        assert frac == 0.585

    def test_ergodic_scalar(self):
        from repro.phy.mimo.capacity import ergodic_capacity
        c = ergodic_capacity(2, 2, 10.0, n_draws=300, rng=42)
        assert c == 5.494824002499881

    def test_ergodic_vector(self):
        from repro.phy.mimo.capacity import ergodic_capacity
        c = ergodic_capacity(3, 2, np.array([0.0, 10.0, 20.0]),
                             n_draws=200, rng=7)
        assert c.tolist() == [2.284122809786747, 6.967766566301601,
                              13.219137020577397]

    def test_outage(self):
        from repro.phy.mimo.capacity import outage_capacity
        c = outage_capacity(2, 2, 12.0, outage=0.1, n_draws=400, rng=11)
        assert c == 4.684408364547731


class TestSimulatorAdaptiveMode:
    def test_link_saturated_point_stops_early(self):
        """PER ~ 1 settles in a couple of batches, not the full budget."""
        from repro.core.link import LinkSimulator
        sim = LinkSimulator("ofdm-54", "awgn", rng=1)
        r = sim.run(5.0, n_packets=2000, payload_bytes=40,
                    precision=0.1, max_trials=2000, batch_size=50)
        assert r.mc.stop_reason == "precision"
        assert r.n_packets < 200
        lo, hi = r.per_ci()
        assert lo <= r.per <= hi

    def test_coverage_result_carries_interval(self):
        from repro.mesh.coverage import coverage_result
        mc = coverage_result(np.array([[100.0, 100.0]]), 200.0,
                             rng=np.random.default_rng(12),
                             precision=0.1, max_trials=5000)
        assert mc.stop_reason in ("precision", "max_trials")
        assert mc.ci_low <= mc.estimate <= mc.ci_high

    def test_ergodic_return_result(self):
        from repro.phy.mimo.capacity import ergodic_capacity
        mc = ergodic_capacity(2, 2, 10.0, rng=np.random.default_rng(13),
                              precision=0.02, max_trials=4000,
                              return_result=True)
        assert mc.estimand == "mean"
        assert mc.ci_low < mc.estimate < mc.ci_high
