"""Tests for the power package: PAPR, PA, chains, adaptive, platform."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.dsss import DsssPhy
from repro.phy.ofdm import OfdmPhy
from repro.power.adaptive import adaptive_rx_power_w
from repro.power.chains import MimoPowerModel
from repro.power.components import adc_power_w, viterbi_power_w
from repro.power.energy import battery_life_hours, energy_per_bit_j
from repro.power.pa import backoff_required_db, pa_efficiency, pa_power_draw_w
from repro.power.papr import papr_at_probability, papr_ccdf, papr_db
from repro.power.platform import PLATFORMS, wlan_power_share
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def ofdm_wave():
    rng = np.random.default_rng(55)
    payload = bytes(rng.integers(0, 256, 400, dtype=np.uint8).tolist())
    return OfdmPhy(54).transmit(payload)


class TestPapr:
    def test_constant_envelope_zero_papr(self):
        wave = np.exp(1j * np.linspace(0, 30, 1000))
        assert papr_db(wave) == pytest.approx(0.0, abs=1e-9)

    def test_ofdm_high_papr(self, ofdm_wave):
        """The paper's complaint: OFDM peaks ~8-12 dB above average."""
        assert papr_db(ofdm_wave) > 7.0

    def test_dsss_low_papr(self, rng):
        wave = DsssPhy(1).modulate(random_bits(300, rng))
        assert papr_db(wave) < 1.0

    def test_ccdf_monotone_decreasing(self, ofdm_wave):
        thresholds, ccdf = papr_ccdf(ofdm_wave)
        assert np.all(np.diff(ccdf) <= 0)
        assert ccdf[0] == 1.0

    def test_quantile_point(self, ofdm_wave):
        p1 = papr_at_probability(ofdm_wave, 0.5)
        p01 = papr_at_probability(ofdm_wave, 0.01)
        assert p01 > p1

    def test_empty_waveform_rejected(self):
        with pytest.raises(ConfigurationError):
            papr_db(np.array([]))


class TestPa:
    def test_efficiency_decreases_with_backoff(self):
        effs = pa_efficiency(np.array([0.0, 3.0, 6.0, 9.0]))
        assert np.all(np.diff(effs) < 0)

    def test_class_ab_beats_class_a_at_backoff(self):
        assert pa_efficiency(9.0, "AB") > pa_efficiency(9.0, "A")

    def test_zero_backoff_max_efficiency(self):
        assert pa_efficiency(0.0, "A") == pytest.approx(0.5)
        assert pa_efficiency(0.0, "AB") == pytest.approx(0.65)

    def test_draw_inverse_of_efficiency(self):
        draw = pa_power_draw_w(0.1, 6.0, "AB")
        assert draw == pytest.approx(0.1 / pa_efficiency(6.0, "AB"))

    def test_ofdm_pa_much_less_efficient_than_cck(self, ofdm_wave, rng):
        """The paper's point, end to end: measure both waveforms' PAPR and
        compare the resulting PA efficiency."""
        cck_backoff = backoff_required_db(
            papr_db(DsssPhy(2).modulate(random_bits(400, rng)))
        )
        ofdm_backoff = backoff_required_db(
            papr_at_probability(ofdm_wave, 0.01)
        )
        assert pa_efficiency(ofdm_backoff) < 0.5 * pa_efficiency(cck_backoff)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            pa_efficiency(3.0, "D")

    def test_negative_papr_rejected(self):
        with pytest.raises(ConfigurationError):
            backoff_required_db(-1.0)


class TestComponents:
    def test_adc_power_doubles_with_bandwidth(self):
        assert adc_power_w(40e6, 8) == pytest.approx(2 * adc_power_w(20e6, 8))

    def test_adc_power_doubles_per_bit(self):
        assert adc_power_w(20e6, 9) == pytest.approx(2 * adc_power_w(20e6, 8))

    def test_viterbi_scales_with_rate(self):
        assert viterbi_power_w(108) == pytest.approx(2 * viterbi_power_w(54))


class TestChains:
    def test_mimo_rx_power_grows_with_chains(self):
        p = [MimoPowerModel(n, n).rx_power_w(54.0) for n in (1, 2, 4)]
        assert p[0] < p[1] < p[2]

    def test_4x4_several_times_siso(self):
        """The paper: MIMO 'significantly increases' power; our model puts
        4x4 RX at 3-5x the SISO figure."""
        siso = MimoPowerModel(1, 1).rx_power_w(54.0)
        mimo = MimoPowerModel(4, 4).rx_power_w(216.0)
        assert 2.5 < mimo / siso < 6.0

    def test_sniff_power_independent_of_chain_count(self):
        assert MimoPowerModel(4, 4).sniff_power_w() == pytest.approx(
            MimoPowerModel(1, 1).sniff_power_w()
        )

    def test_40mhz_costs_more(self):
        narrow = MimoPowerModel(2, 2, bandwidth_scale=1.0).rx_power_w(54.0)
        wide = MimoPowerModel(2, 2, bandwidth_scale=2.0).rx_power_w(54.0)
        assert wide > narrow

    def test_tx_includes_pa_backoff(self):
        ofdm = MimoPowerModel(1, 1, papr_backoff_db=9.0).tx_power_total_w()
        cck = MimoPowerModel(1, 1, papr_backoff_db=3.0).tx_power_total_w()
        assert ofdm > cck

    def test_active_chain_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            MimoPowerModel(2, 2).rx_power_w(54.0, active_chains=3)

    def test_invalid_chain_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MimoPowerModel(0, 1)


class TestAdaptive:
    def test_saving_positive_for_idle_heavy_traffic(self):
        model = MimoPowerModel(4, 4)
        result = adaptive_rx_power_w(model, busy_fraction=0.05)
        assert result["saving_fraction"] > 0.4

    def test_no_saving_when_always_busy(self):
        model = MimoPowerModel(4, 4)
        result = adaptive_rx_power_w(model, busy_fraction=1.0)
        assert result["saving_fraction"] == pytest.approx(0.0, abs=0.01)

    def test_wake_energy_erodes_saving(self):
        model = MimoPowerModel(4, 4)
        cheap = adaptive_rx_power_w(model, 0.05, packets_per_s=10)
        costly = adaptive_rx_power_w(model, 0.05, packets_per_s=10,
                                     wake_energy_j=1e-2)
        assert costly["saving_fraction"] < cheap["saving_fraction"]

    def test_invalid_busy_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            adaptive_rx_power_w(MimoPowerModel(2, 2), 1.5)


class TestPlatformAndEnergy:
    def test_wlan_small_share_of_notebook(self):
        assert wlan_power_share(1.5, "notebook") < 0.1

    def test_wlan_large_share_of_handheld(self):
        """The paper: small form factors are where WLAN power bites."""
        assert wlan_power_share(0.6, "pda") > 0.3

    def test_unknown_platform_rejected(self):
        with pytest.raises(ConfigurationError):
            wlan_power_share(1.0, "mainframe")

    def test_all_platforms_positive(self):
        assert all(p.total_power_w > 0 for p in PLATFORMS.values())

    def test_energy_per_bit(self):
        assert energy_per_bit_j(1.0, 1.0) == pytest.approx(1e-6)

    def test_battery_life(self):
        assert battery_life_hours(50.0, 25.0) == pytest.approx(2.0)

    def test_invalid_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_per_bit_j(1.0, 0.0)
