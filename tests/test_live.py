"""Live telemetry: metrics registry, status snapshotter, stall detection.

The PR-9 observability contract: store-backed campaigns keep an atomic
``results/<name>/status.json`` fresh while they run — point counts,
per-worker heartbeat ages, EWMA throughput/ETA, merged metric
histograms — and a worker that dies holding leases is flagged as a
stall while the campaign still converges to a complete record set.
"""

import json
import os
import threading
import time

import pytest

from repro.campaign import CampaignSpec, ResultsStore, run_campaign
from repro.campaign.runner import register_point_kind
from repro.errors import ConfigurationError
from repro.obs import live
from repro.obs import metrics
from repro.obs.live import StatusBoard


# -- metrics registry ---------------------------------------------------------

class TestHistogram:
    def test_observe_counts_and_moments(self):
        h = metrics.Histogram()
        for v in (0.001, 0.01, 0.01, 0.1):
            h.observe(v)
        assert h.n == 4
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.1)
        assert h.mean == pytest.approx(0.121 / 4)

    def test_quantile_is_upper_bound_within_one_bucket(self):
        h = metrics.Histogram(per_decade=4)
        for v in (0.01,) * 9 + (1.0,):
            h.observe(v)
        p50 = h.quantile(0.5)
        # One bucket's upper edge above 0.01: 10**(1/4) ~ 1.78x.
        assert 0.01 <= p50 <= 0.01 * 10 ** 0.25 + 1e-12
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_out_of_range_samples_clamp_to_edge_buckets(self):
        h = metrics.Histogram(lo=1e-3, hi=1e3)
        h.observe(1e-9)
        h.observe(1e9)
        h.observe(float("nan"))  # dropped
        assert h.n == 2
        assert h.counts[0] == 1
        assert h.counts[-1] == 1

    def test_snapshot_roundtrip_and_merge(self):
        a, b = metrics.Histogram(), metrics.Histogram()
        for v in (0.01, 0.1):
            a.observe(v)
        for v in (0.1, 1.0, 10.0):
            b.observe(v)
        merged = metrics.Histogram.from_snapshot(a.snapshot())
        merged.merge(b.snapshot())
        assert merged.n == 5
        assert merged.min == pytest.approx(0.01)
        assert merged.max == pytest.approx(10.0)
        assert merged.total == pytest.approx(a.total + b.total)

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            metrics.Histogram(per_decade=4).merge(
                metrics.Histogram(per_decade=8))


class TestRegistry:
    def test_counters_gauges_histograms_snapshot(self):
        reg = metrics.MetricsRegistry()
        reg.count("trials", 100)
        reg.count("trials", 50)
        reg.gauge("rate", 3.5)
        reg.observe("wall_s", 0.2)
        snap = reg.snapshot()
        assert snap["counters"] == {"trials": 150}
        assert snap["gauges"] == {"rate": 3.5}
        assert snap["histograms"]["wall_s"]["n"] == 1

    def test_merge_snapshots_sums_across_processes(self):
        a, b = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        a.count("trials", 10)
        b.count("trials", 5)
        a.gauge("rate", 2.0)
        b.gauge("rate", 3.0)
        a.observe("wall_s", 0.1)
        b.observe("wall_s", 1.0)
        merged = metrics.merge_snapshots([a.snapshot(), b.snapshot(),
                                          None, {}])
        assert merged["counters"] == {"trials": 15}
        assert merged["gauges"]["rate"] == pytest.approx(5.0)
        assert merged["histograms"]["wall_s"]["n"] == 2

    def test_module_dispatch_is_noop_without_registry(self):
        assert metrics.current_registry() is None
        metrics.count("ghost", 5)
        metrics.gauge("ghost", 1.0)
        metrics.observe("ghost", 0.5)
        assert metrics.current_registry() is None

    def test_use_registry_scopes_and_restores(self):
        with metrics.use_registry(metrics.MetricsRegistry()) as reg:
            metrics.count("inside")
            assert metrics.enabled()
        assert not metrics.enabled()
        assert reg.snapshot()["counters"] == {"inside": 1}

    def test_histogram_summary_shape(self):
        reg = metrics.MetricsRegistry()
        for v in (0.1, 0.2, 0.4):
            reg.observe("w", v)
        s = metrics.histogram_summary(reg.snapshot()["histograms"]["w"])
        assert s["n"] == 3
        assert s["mean"] == pytest.approx(0.7 / 3)
        assert s["max"] == pytest.approx(0.4)
        assert s["p50"] >= 0.2


# -- atomic status document ---------------------------------------------------

class TestStatusIO:
    def test_write_then_read_roundtrip(self, tmp_path):
        path = tmp_path / "status.json"
        live.write_json_atomic(path, {"points": {"done": 3},
                                      "bad": float("nan")})
        doc = live.read_status(path)
        assert doc["points"]["done"] == 3
        assert doc["bad"] is None  # sanitised, not a JSON error

    def test_read_missing_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            live.read_status(tmp_path / "nope.json")

    def test_no_temp_file_left_behind(self, tmp_path):
        live.write_json_atomic(tmp_path / "status.json", {"ok": 1})
        assert os.listdir(tmp_path) == ["status.json"]


# -- the status board ---------------------------------------------------------

def memory_board(total=10, **kwargs):
    return StatusBoard(None, campaign="t", total=total, **kwargs)


class TestStatusBoard:
    def test_point_counts_and_remaining(self):
        board = memory_board(total=10)
        board.point_cached(3)
        board.point_done(outcome="ok")
        board.point_done(outcome="error")
        board.set_running(2)
        doc = board.snapshot()
        assert doc["points"] == {"total": 10, "cached": 3, "done": 2,
                                 "ok": 1, "failed": 1, "running": 2,
                                 "remaining": 5}

    def test_throughput_and_eta_after_progress(self):
        board = memory_board(total=4)
        board.point_done()
        board.point_done()
        doc = board.snapshot()
        assert doc["throughput_pps"] is not None
        assert doc["throughput_pps"] > 0
        assert doc["eta_s"] is not None

    def test_worker_heartbeat_carries_metrics_and_clears_stall(self):
        board = memory_board(stall_after_s=100.0)
        board.worker_spawned(111)
        reg = metrics.MetricsRegistry()
        reg.count("mc.trials", 42)
        board.worker_heartbeat(111, {"t": time.time(),
                                     "metrics": reg.snapshot()})
        doc = board.snapshot()
        assert doc["workers"]["111"]["state"] == "alive"
        assert not doc["workers"]["111"]["stalled"]
        assert doc["metrics"]["counters"]["mc.trials"] == 42

    def test_silent_worker_is_flagged_stalled_then_recovers(self):
        board = memory_board(heartbeat_s=0.01, stall_after_s=0.02)
        board.worker_spawned(222)
        time.sleep(0.05)
        assert board.snapshot()["workers"]["222"]["stalled"]
        board.worker_heartbeat(222)  # resumed beating: flag clears
        assert not board.snapshot()["workers"]["222"]["stalled"]

    def test_dead_worker_with_forfeits_is_a_stall(self, tmp_path):
        board = StatusBoard(tmp_path / "status.json", campaign="t",
                            total=5)
        board.worker_spawned(333)
        board.worker_dead(333, forfeited=2)
        doc = live.read_status(tmp_path / "status.json")
        assert doc["stalls_detected"] == 1
        assert doc["workers"]["333"]["state"] == "dead"
        assert doc["workers"]["333"]["stalled"]
        assert doc["workers"]["333"]["forfeited_points"] == 2

    def test_clean_worker_exit_is_not_a_stall(self):
        board = memory_board()
        board.worker_spawned(444)
        board.worker_dead(444, forfeited=0)
        doc = board.snapshot()
        assert doc["stalls_detected"] == 0
        assert not doc["workers"]["444"]["stalled"]
        assert doc["workers"]["444"]["state"] == "dead"

    def test_parent_registry_merges_into_snapshot(self):
        reg = metrics.MetricsRegistry()
        board = memory_board(registry=reg)
        board.point_done(wall_s=0.25)
        doc = board.snapshot()
        hist = doc["metrics"]["histograms"]["campaign.point.wall_s"]
        assert hist["n"] == 1
        assert doc["histogram_summary"]["campaign.point.wall_s"]["n"] == 1

    def test_maybe_write_rate_limits_but_force_writes(self, tmp_path):
        board = StatusBoard(tmp_path / "s.json", campaign="t", total=1,
                            heartbeat_s=10.0)
        assert board.maybe_write(force=True) is not None
        assert board.maybe_write() is None  # inside the min interval
        assert board.maybe_write(force=True) is not None

    def test_finish_writes_terminal_state(self, tmp_path):
        board = StatusBoard(tmp_path / "s.json", campaign="t", total=1)
        board.start_ticker()
        board.point_done()
        board.finish("done")
        doc = live.read_status(tmp_path / "s.json")
        assert doc["state"] == "done"
        assert doc["points"]["running"] == 0


class TestRendering:
    def test_refresh_ages_only_restalls_running_documents(self):
        stale = time.time() - 1000.0
        base = {"state": "done", "stall_after_s": 5.0, "t_update": stale,
                "workers": {"1": {"last_seen": stale, "state": "alive",
                                  "stalled": False}}}
        done = live.refresh_ages(json.loads(json.dumps(base)))
        assert not done["workers"]["1"]["stalled"]
        base["state"] = "running"
        running = live.refresh_ages(json.loads(json.dumps(base)))
        assert running["workers"]["1"]["stalled"]
        assert running["age_of_update_s"] > 100

    def test_status_lines_render_the_whole_story(self):
        board = memory_board(total=8, registry=metrics.MetricsRegistry())
        board.point_cached(2)
        board.point_done(outcome="ok", worker=9, wall_s=0.1)
        board.worker_dead(9, forfeited=1)
        text = "\n".join(live.status_lines(board.snapshot()))
        assert "3/8" in text
        assert "2 cached" in text
        assert "stalls 1" in text
        assert "STALLED" in text
        assert "forfeited 1" in text
        assert "campaign.point.wall_s" in text


# -- end-to-end: live status under the local-queue backend --------------------

def _slow_draw_point(params, rng):
    time.sleep(float(params.get("sleep_s", 0.0)))
    return {"draw": float(rng.integers(0, 1 << 30))}


def _die_holding_lease_point(params, rng):
    """First visit to ``die_at`` kills the worker mid-unit (see
    tests/test_queue.py); the flag file lets the requeued retry pass."""
    x = int(params["x"])
    if x == int(params.get("die_at", -1)):
        flag = os.path.join(params["flag_dir"], f"died-{x}")
        if not os.path.exists(flag):
            if os.path.isdir(params["flag_dir"]):
                open(flag, "w").close()
            os._exit(13)
    return {"draw": float(rng.integers(0, 1 << 30))}


register_point_kind("test-live-slow", _slow_draw_point, code_version="1")
register_point_kind("test-live-die", _die_holding_lease_point,
                    code_version="1")


class TestLiveStatusEndToEnd:
    def test_status_converges_on_completed_run(self, tmp_path):
        store = ResultsStore(tmp_path / "r")
        spec = CampaignSpec(name="live-done", kind="test-live-slow",
                            factors={"x": list(range(6))}, base_seed=5)
        result = run_campaign(spec, workers=2, store=store,
                              backend="local-queue", heartbeat_s=0.1)
        assert result.n_failed == 0
        doc = live.read_status(store.status_path("live-done"))
        assert doc["state"] == "done"
        assert doc["points"]["done"] == 6
        assert doc["points"]["remaining"] == 0
        assert doc["points"]["running"] == 0
        assert doc["stalls_detected"] == 0
        assert sum(w["n_records"] for w in doc["workers"].values()) == 6
        assert doc["queue"]["n_acks"] >= 1

    def test_killed_worker_flags_stall_and_status_converges(self, tmp_path):
        """The PR-9 satellite: kill a worker mid-unit; the stall
        detector flags the forfeited lease and status.json still
        converges to the final record counts."""
        flag_dir = tmp_path / "flags"
        flag_dir.mkdir()
        store = ResultsStore(tmp_path / "r")
        spec = CampaignSpec(
            name="live-stall", kind="test-live-die",
            factors={"x": list(range(8))},
            fixed={"die_at": 3, "flag_dir": str(flag_dir)},
            base_seed=23)
        result = run_campaign(spec, workers=2, backend="local-queue",
                              shard_size=2, store=store, heartbeat_s=0.1)
        assert all(r["outcome"] == "ok" for r in result.records)
        assert result.extras["queue"]["n_requeued"] >= 1

        doc = live.read_status(store.status_path("live-stall"))
        assert doc["state"] == "done"
        # The forfeited lease was detected as a stall...
        assert doc["stalls_detected"] >= 1
        dead = [w for w in doc["workers"].values()
                if w["state"] == "dead"]
        assert dead and sum(w["forfeited_points"] for w in dead) >= 1
        # ...and the final document still converged to the full grid.
        assert doc["points"]["done"] + doc["points"]["cached"] == 8
        assert doc["points"]["failed"] == 0
        assert doc["points"]["remaining"] == 0
        assert store.count("live-stall") == 8

    def test_status_observable_mid_run(self, tmp_path):
        """A watcher polling status.json during the run sees live
        running/done counts (the `watch --once` acceptance shape)."""
        gate = tmp_path / "go"
        store = ResultsStore(tmp_path / "r")
        spec = CampaignSpec(
            name="live-mid", kind="test-live-gate",
            factors={"x": [0, 1]},
            fixed={"gate": str(gate)}, base_seed=3)
        done = {}

        def run():
            done["result"] = run_campaign(spec, workers=1, store=store,
                                          backend="local-queue",
                                          heartbeat_s=0.05)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            path = store.status_path("live-mid")
            deadline = time.monotonic() + 30.0
            seen_running = None
            while time.monotonic() < deadline:
                if os.path.exists(path):
                    doc = live.read_status(path)
                    if doc["state"] == "running" and \
                            doc["points"]["running"] >= 1:
                        seen_running = doc
                        break
                time.sleep(0.02)
            assert seen_running is not None, \
                "never observed a running status.json mid-campaign"
            assert seen_running["points"]["total"] == 2
            assert seen_running["workers"], "no worker heartbeats seen"
        finally:
            gate.write_text("go")  # release the workers
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert done["result"].n_failed == 0
        assert live.read_status(path)["state"] == "done"


def _gated_point(params, rng):
    """Block until the gate file exists, so the test can observe the
    campaign *while* a point is provably in flight."""
    deadline = time.monotonic() + 25.0
    while not os.path.exists(params["gate"]):
        if time.monotonic() > deadline:
            raise RuntimeError("gate never opened")
        time.sleep(0.01)
    return {"draw": float(rng.integers(0, 1 << 30))}


register_point_kind("test-live-gate", _gated_point, code_version="1")
