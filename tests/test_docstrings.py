"""Quality gate: every public item in the library carries a docstring.

The deliverable says "doc comments on every public item"; this meta-test
enforces it so the guarantee cannot rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        names.append(info.name)
    return sorted(names)


ALL_MODULES = _all_modules()


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not callable(meth) and not isinstance(meth, property):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                if not getattr(target, "__doc__", None):
                    missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"
