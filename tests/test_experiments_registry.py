"""Tests for the quick-experiment registry and its CLI command."""

import pytest

from repro.cli import main
from repro.core.experiments import list_experiments, run_experiment
from repro.errors import ConfigurationError


class TestRegistry:
    def test_lists_cover_core_experiments(self):
        ids = {key for key, _ in list_experiments()}
        for required in ("E1", "E2", "E5", "E6", "E11", "E15", "E17"):
            assert required in ids

    @pytest.mark.parametrize("exp_id", [key for key, _ in list_experiments()])
    def test_every_experiment_runs_and_is_deterministic(self, exp_id):
        lines = run_experiment(exp_id)
        assert len(lines) >= 3
        assert lines[0].startswith(exp_id)
        assert all(isinstance(line, str) and line for line in lines)
        # Experiments carry their own seeds, so a second dispatch must
        # reproduce the first bit-for-bit.
        assert run_experiment(exp_id) == lines

    def test_lowercase_accepted(self):
        assert run_experiment("e1")[0].startswith("E1")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("E99")


class TestCli:
    def test_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E17" in out

    def test_run_one(self, capsys):
        assert main(["experiment", "E5"]) == 0
        assert "600" in capsys.readouterr().out
