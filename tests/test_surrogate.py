"""Tests for repro.surrogate: surfaces, builder, AbstractLink, validate."""

import numpy as np
import pytest

from repro.campaign import ResultsStore
from repro.core.link import LinkSimulator
from repro.errors import ConfigurationError
from repro.mesh.coverage import coverage_result
from repro.surrogate import (AbstractLink, PerSurface, WaveformLink,
                             build_surface, list_surfaces, load_surface,
                             require_valid, validate_surface)

# The validation grid of the acceptance criteria: 3 rates x 4 SNRs over
# cheap DSSS/CCK waveforms, one payload, fixed seeds throughout.
GRID_PHYS = ["dsss-1", "dsss-2", "cck-5.5"]
GRID_SNRS = [-2.0, 1.0, 4.0, 8.0]
GRID_PAYLOAD = 25


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return ResultsStore(tmp_path_factory.mktemp("surfaces"))


@pytest.fixture(scope="module")
def surface(store):
    return build_surface("equiv-grid", GRID_PHYS, snr_db=GRID_SNRS,
                         payload_bytes=[GRID_PAYLOAD], n_packets=80,
                         base_seed=5, store=store)


def toy_surface(per_rows, snrs=(0.0, 10.0), payloads=(100,),
                phys=("dsss-1",), rates=(1.0,)):
    """Hand-built surface with prescribed PER values (no MC)."""
    per = np.asarray(per_rows, dtype=float).reshape(
        len(phys), len(payloads), len(snrs))
    return PerSurface(
        name="toy", channel="awgn", phys=list(phys),
        rate_mbps=np.asarray(rates, dtype=float),
        snr_db=np.asarray(snrs, dtype=float),
        payload_bytes=np.asarray(payloads),
        per=per,
        per_ci_low=np.clip(per - 0.05, 0.0, 1.0),
        per_ci_high=np.clip(per + 0.05, 0.0, 1.0),
        ber=per / 100.0,
        n_trials=np.full(per.shape, 100.0),
    )


class TestPerSurface:
    def test_rejects_unsorted_axis(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            toy_surface([[0.5, 0.1]], snrs=(10.0, 0.0))

    def test_rejects_shape_mismatch(self):
        good = toy_surface([[0.5, 0.1]])
        with pytest.raises(ConfigurationError, match="shape"):
            PerSurface(
                name="bad", channel="awgn", phys=good.phys,
                rate_mbps=good.rate_mbps, snr_db=good.snr_db,
                payload_bytes=good.payload_bytes,
                per=np.zeros((1, 1, 3)),  # 3 SNR columns vs 2-point axis
                per_ci_low=np.zeros((1, 1, 3)),
                per_ci_high=np.zeros((1, 1, 3)),
                ber=np.zeros((1, 1, 3)),
                n_trials=np.zeros((1, 1, 3)),
            )

    def test_rejects_duplicate_phys(self):
        with pytest.raises(ConfigurationError, match="unique"):
            toy_surface([[0.5, 0.1], [0.5, 0.1]],
                        phys=("dsss-1", "dsss-1"), rates=(1.0, 1.0))

    def test_rejects_per_outside_unit_interval(self):
        with pytest.raises(ConfigurationError, match="lie in"):
            toy_surface([[1.5, 0.1]])

    def test_exact_grid_points_returned_verbatim(self):
        s = toy_surface([[0.37, 0.0041]])
        assert s.per_at("dsss-1", 0.0) == 0.37
        assert s.per_at("dsss-1", 10.0) == 0.0041

    def test_log_domain_midpoint(self):
        """Halfway between PER 1e-1 and 1e-3 in log10 is exactly 1e-2."""
        s = toy_surface([[0.1, 0.001]])
        assert s.per_at("dsss-1", 5.0) == pytest.approx(0.01, rel=1e-9)

    def test_clamp_policy_pins_to_edges(self):
        s = toy_surface([[0.5, 0.01]])
        assert s.per_at("dsss-1", -100.0) == 0.5
        assert s.per_at("dsss-1", +100.0) == 0.01

    def test_error_policy_raises_out_of_grid(self):
        s = toy_surface([[0.5, 0.01]])
        with pytest.raises(ConfigurationError, match="outside the surface"):
            s.per_at("dsss-1", 10.5, out_of_grid="error")
        # In-grid queries still answer under the strict policy.
        assert s.per_at("dsss-1", 10.0, out_of_grid="error") == 0.01

    def test_bad_policy_rejected(self):
        s = toy_surface([[0.5, 0.01]])
        with pytest.raises(ConfigurationError, match="out_of_grid"):
            s.per_at("dsss-1", 5.0, out_of_grid="extrapolate")

    def test_single_point_axes_are_constant(self):
        s = toy_surface([[0.2]], snrs=(5.0,), payloads=(100,))
        for q in (-10.0, 5.0, 40.0):
            assert s.per_at("dsss-1", q) == 0.2

    def test_zero_cells_interpolate_to_zero(self):
        s = toy_surface([[0.0, 0.0]])
        assert s.per_at("dsss-1", 5.0) == 0.0
        assert s.per_at("dsss-1", 0.0) == 0.0

    def test_zero_boundary_decays_toward_zero_cell(self):
        s = toy_surface([[0.1, 0.0]])
        mid = s.per_at("dsss-1", 5.0)
        assert 0.0 < mid < 0.1  # log-floor pull, not a cliff
        assert s.per_at("dsss-1", 10.0) == 0.0  # exact hit stays exact

    def test_array_queries_broadcast(self):
        s = toy_surface([[0.1, 0.001]])
        out = s.per_at("dsss-1", np.array([0.0, 5.0, 10.0]))
        assert out.shape == (3,)
        assert out[0] == 0.1 and out[2] == 0.001

    def test_unknown_phy_and_rate_rejected(self):
        s = toy_surface([[0.1, 0.001]])
        with pytest.raises(ConfigurationError, match="no phy"):
            s.per_at("ofdm-54", 5.0)
        with pytest.raises(ConfigurationError, match="no phy at"):
            s.per_for_rate(54.0, 5.0)
        assert s.per_for_rate(1.0, 0.0) == 0.1

    def test_cell_lookup_requires_grid_point(self):
        s = toy_surface([[0.1, 0.001]])
        assert s.cell("dsss-1", 10.0, 100)["per"] == 0.001
        with pytest.raises(ConfigurationError, match="not a grid point"):
            s.cell("dsss-1", 5.0, 100)

    def test_save_load_roundtrip(self, tmp_path, surface):
        surface.save(tmp_path)
        back = PerSurface.load(tmp_path)
        assert back.phys == surface.phys
        np.testing.assert_array_equal(back.per, surface.per)
        np.testing.assert_array_equal(back.per_ci_high,
                                      surface.per_ci_high)
        np.testing.assert_array_equal(back.n_trials, surface.n_trials)
        assert back.meta["base_seed"] == surface.meta["base_seed"]

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no PER surface"):
            PerSurface.load(tmp_path / "ghost")


class TestBuilder:
    def test_surface_persisted_and_listed(self, store, surface):
        assert "equiv-grid" in list_surfaces(store)
        back = load_surface(store, "equiv-grid")
        np.testing.assert_array_equal(back.per, surface.per)

    def test_rebuild_is_all_cache_hits(self, store, surface):
        again = build_surface("equiv-grid", GRID_PHYS, snr_db=GRID_SNRS,
                              payload_bytes=[GRID_PAYLOAD], n_packets=80,
                              base_seed=5, store=store)
        assert again.meta["n_executed"] == 0
        assert again.meta["n_cached"] == surface.n_cells
        np.testing.assert_array_equal(again.per, surface.per)

    def test_cells_match_direct_link_runs(self, surface):
        """A surface cell is one campaign link point: same seed policy,
        same Wilson CI fields, PER consistent with a plain run."""
        assert surface.shape == (3, 1, 4)
        assert surface.total_trials == 3 * 4 * 80
        cell = surface.cell("dsss-2", GRID_SNRS[0], GRID_PAYLOAD)
        assert 0.0 <= cell["ci_low"] <= cell["per"] <= cell["ci_high"] <= 1.0
        assert cell["n_trials"] == 80

    def test_rejects_empty_and_duplicate_inputs(self):
        with pytest.raises(ConfigurationError):
            build_surface("bad", [], snr_db=[0.0])
        with pytest.raises(ConfigurationError, match="unique"):
            build_surface("bad", ["dsss-1", "dsss-1"], snr_db=[0.0])
        with pytest.raises(ConfigurationError):
            build_surface("bad", ["dsss-1"], snr_db=[])


class TestAbstractLink:
    def test_needs_phy_when_ambiguous(self, surface):
        with pytest.raises(ConfigurationError, match="pass phy="):
            AbstractLink(surface)
        link = AbstractLink(surface, "cck-5.5", rng=1)
        assert link.rate_mbps == 5.5

    def test_statistical_equivalence_on_validation_grid(self, surface):
        """Acceptance: surrogate PER within combined Wilson CIs of the
        waveform PER at every cell of the 3-rate x 4-SNR grid."""
        for i, phy in enumerate(GRID_PHYS):
            link = AbstractLink(surface, phy, rng=100 + i)
            sim = LinkSimulator(phy, "awgn", rng=200 + i)
            for snr in GRID_SNRS:
                sur = link.run(snr, 400, GRID_PAYLOAD)
                wav = sim.run(snr, 80, GRID_PAYLOAD)
                s_lo, s_hi = sur.per_ci()
                w_lo, w_hi = wav.per_ci()
                assert s_lo <= w_hi and w_lo <= s_hi, (
                    f"{phy} @ {snr} dB: surrogate [{s_lo:.3f},{s_hi:.3f}] "
                    f"vs waveform [{w_lo:.3f},{w_hi:.3f}]"
                )

    def test_run_result_bookkeeping(self, surface):
        link = AbstractLink(surface, "dsss-1", rng=3)
        r = link.run(4.0, 50, GRID_PAYLOAD)
        assert r.n_packets == 50
        assert r.n_bits == 50 * 8 * GRID_PAYLOAD
        assert r.rate_mbps == 1.0
        assert r.extras["surrogate"] is True
        assert 0.0 <= r.per <= 1.0

    def test_adaptive_precision_mode(self, surface):
        link = AbstractLink(surface, "dsss-2", rng=4)
        r = link.run(GRID_SNRS[0], 50, GRID_PAYLOAD,
                     precision=0.25, max_trials=20000)
        assert r.mc.stop_reason in ("precision", "max_trials")
        assert r.mc.n_trials >= 50

    def test_waterfall_and_validation_parity(self, surface):
        link = AbstractLink(surface, "dsss-1", rng=5)
        sim = LinkSimulator("dsss-1", "awgn", rng=5)
        results = link.waterfall(GRID_SNRS, n_packets=20,
                                 payload_bytes=GRID_PAYLOAD)
        assert len(results) == len(GRID_SNRS)
        # Bad input must fail identically on both paths.
        for call in (lambda s: s.run(float("nan"), 10, 25),
                     lambda s: s.run(8.0, 0, 25),
                     lambda s: s.run(8.0, 10, -1),
                     lambda s: s.waterfall([])):
            with pytest.raises(ConfigurationError) as sur_exc:
                call(link)
            with pytest.raises(ConfigurationError) as wav_exc:
                call(sim)
            assert str(sur_exc.value) == str(wav_exc.value)

    def test_snr_for_per_deterministic_and_monotone(self):
        s = toy_surface([[0.9, 0.5, 0.1, 0.001]],
                        snrs=(0.0, 4.0, 8.0, 12.0))
        link = AbstractLink(s, rng=6)
        snr = link.snr_for_per(0.3, lo_db=0.0, hi_db=12.0,
                               tolerance_db=0.1)
        assert 4.0 < snr < 8.0
        assert snr == link.snr_for_per(0.3, lo_db=0.0, hi_db=12.0,
                                       tolerance_db=0.1)
        assert link.snr_for_per(0.95, lo_db=0.0, hi_db=12.0) == 0.0
        with pytest.raises(ConfigurationError, match="not met even at"):
            link.snr_for_per(0.0005, lo_db=0.0, hi_db=12.0)
        with pytest.raises(ConfigurationError):
            link.snr_for_per(1.5)

    def test_packet_success_vectorized(self, surface):
        link = AbstractLink(surface, "dsss-1", rng=7)
        outcomes = link.packet_success(np.full(500, GRID_SNRS[-1]),
                                       GRID_PAYLOAD)
        assert outcomes.shape == (500,)
        assert isinstance(link.packet_success(GRID_SNRS[-1]), bool)

    def test_out_of_grid_error_policy(self, surface):
        link = AbstractLink(surface, "dsss-1", rng=8, out_of_grid="error")
        with pytest.raises(ConfigurationError, match="outside the surface"):
            link.run(99.0, 10, GRID_PAYLOAD)

    def test_for_phy_sibling(self, surface):
        link = AbstractLink(surface, "dsss-1", rng=9)
        sibling = link.for_phy("cck-5.5")
        assert sibling.rate_mbps == 5.5
        assert sibling.surface is link.surface


class TestValidateSurface:
    def test_fresh_surface_validates(self, surface):
        report = validate_surface(surface, snr_db=[GRID_SNRS[1]],
                                  n_packets=60, seed=999)
        assert report.ok
        assert require_valid(report) is report
        assert any("OK" in line for line in report.lines())

    def test_tampered_surface_fails(self, surface):
        broken = PerSurface(
            name="broken", channel=surface.channel, phys=surface.phys,
            rate_mbps=surface.rate_mbps, snr_db=surface.snr_db,
            payload_bytes=surface.payload_bytes,
            per=np.full_like(surface.per, 0.985),
            per_ci_low=np.full_like(surface.per, 0.98),
            per_ci_high=np.full_like(surface.per, 0.99),
            ber=surface.ber, n_trials=surface.n_trials,
        )
        report = validate_surface(broken, phys=["dsss-1"],
                                  snr_db=[GRID_SNRS[-1]], n_packets=40,
                                  seed=999)
        assert not report.ok
        with pytest.raises(ConfigurationError, match="failed validation"):
            require_valid(report)

    def test_subset_must_hit_grid_points(self, surface):
        with pytest.raises(ConfigurationError, match="not a grid point"):
            validate_surface(surface, snr_db=[2.5], n_packets=10)

    def test_union_bound_check_runs_for_ofdm(self, tmp_path):
        s = build_surface("ofdm-tail", ["ofdm-6"], snr_db=[2.0, 12.0],
                          payload_bytes=[40], n_packets=25, base_seed=2,
                          store=ResultsStore(tmp_path))
        report = validate_surface(s, n_packets=25, seed=77)
        kinds = {c.kind for c in report.checks}
        assert "union-bound" in kinds
        assert report.ok


class TestMeshWiring:
    def test_surrogate_coverage_within_waveform_cis(self, surface):
        """Acceptance: coverage_fraction through an AbstractLink agrees
        with the waveform path (WaveformLink) within combined CIs."""
        rng = np.random.default_rng(42)
        positions = rng.uniform(0.0, 120.0, size=(9, 2))
        kwargs = dict(standard="802.11", n_samples=1500, max_per=0.25)
        sur = coverage_result(positions, 120.0, rng=11,
                              link=AbstractLink(surface, "dsss-1", rng=11),
                              **kwargs)
        wav = coverage_result(positions, 120.0, rng=11,
                              link=WaveformLink("dsss-1", "awgn", rng=12,
                                                n_packets=60,
                                                payload_bytes=GRID_PAYLOAD,
                                                quantize_db=1.0),
                              **kwargs)
        assert sur.ci_low <= wav.ci_high and wav.ci_low <= sur.ci_high, (
            f"surrogate [{sur.ci_low:.3f},{sur.ci_high:.3f}] vs "
            f"waveform [{wav.ci_low:.3f},{wav.ci_high:.3f}]"
        )

    def test_threshold_path_unchanged_without_link(self):
        """link=None keeps the rate-table behaviour bit-identical."""
        rng = np.random.default_rng(1)
        positions = rng.uniform(0.0, 200.0, size=(8, 2))
        a = coverage_result(positions, 200.0, rng=3, n_samples=800)
        b = coverage_result(positions, 200.0, rng=3, n_samples=800)
        assert a.n_events == b.n_events

    def test_bad_portal_and_max_per_rejected(self, surface):
        positions = np.zeros((3, 2))
        with pytest.raises(ConfigurationError, match="portal"):
            coverage_result(positions, 100.0, portal=7)
        with pytest.raises(ConfigurationError, match="max_per"):
            coverage_result(positions, 100.0,
                            link=AbstractLink(surface, "dsss-1"),
                            max_per=0.0)


class TestRateAdaptationWiring:
    def test_controller_runs_on_measured_per(self, surface):
        from repro.mac.rate_adaptation import (SnrRateController,
                                               simulate_rate_adaptation)
        from repro.standards.registry import RateEntry, Standard

        ladder = Standard(
            name="toy-ladder", year=1997, phy_type="DSSS", band_ghz=2.4,
            bandwidth_mhz=22.0,
            rates=(RateEntry(1.0, 2.0, "DBPSK"),
                   RateEntry(2.0, 5.0, "DQPSK")),
        )
        link = AbstractLink(surface, "dsss-1", rng=13)
        trace = np.linspace(-2.0, 8.0, 300)
        result = simulate_rate_adaptation(SnrRateController(ladder), trace,
                                          payload_bits=200, rng=13,
                                          link=link)
        assert result.packets == 300
        assert 0.0 < result.success_ratio <= 1.0
        # High-SNR tail should ride the 2 Mbps rung.
        assert result.mean_rate_mbps > 1.0

    def test_rate_outside_surface_rejected(self, surface):
        from repro.mac.rate_adaptation import (ArfController,
                                               simulate_rate_adaptation)

        link = AbstractLink(surface, "dsss-1", rng=14)
        # 802.11a's ladder (6..54 Mbps) has no surface coverage at all.
        with pytest.raises(ConfigurationError, match="no phy at"):
            simulate_rate_adaptation(ArfController("802.11a"),
                                     [20.0, 20.0], rng=14, link=link)


class TestSurfaceCli:
    def test_build_ls_show_validate_and_surrogate_link(self, tmp_path,
                                                       capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["surface", "build", "cli-grid", "--phys",
                     "dsss-1,dsss-2", "--snr=-2:6:4", "--payload", "25",
                     "--packets", "25"]) == 0
        out = capsys.readouterr().out
        assert "saved under" in out and "2 phy(s)" in out

        assert main(["surface", "ls"]) == 0
        assert "cli-grid" in capsys.readouterr().out

        assert main(["surface", "show", "cli-grid"]) == 0
        assert "waveform cost" in capsys.readouterr().out

        assert main(["surface", "validate", "cli-grid",
                     "--packets", "30"]) == 0
        assert "validation: OK" in capsys.readouterr().out

        assert main(["link", "dsss-1", "awgn", "4", "--surrogate",
                     "cli-grid", "--packets", "200", "--bytes", "25"]) == 0
        assert "surrogate surface 'cli-grid'" in capsys.readouterr().out

    def test_missing_surface_is_cli_error(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["surface", "show", "ghost"]) == 2
        assert "error:" in capsys.readouterr().err