"""Tests for RNG plumbing: as_generator coercion and seed substreams."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_seeds, substream


class TestAsGenerator:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(4)
        assert as_generator(gen) is gen

    def test_int_seed_reproducible(self):
        a = as_generator(12).integers(0, 1 << 30, 16)
        b = as_generator(12).integers(0, 1 << 30, 16)
        assert (a == b).all()

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(12, spawn_key=(5,))
        got = as_generator(seq).integers(0, 1 << 30, 16)
        want = np.random.default_rng(
            np.random.SeedSequence(12, spawn_key=(5,))).integers(0, 1 << 30,
                                                                 16)
        assert (got == want).all()


class TestSpawnSeeds:
    def test_count_and_type(self):
        seeds = spawn_seeds(0, 5)
        assert len(seeds) == 5
        assert all(isinstance(s, np.random.SeedSequence) for s in seeds)
        assert spawn_seeds(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
        with pytest.raises(ValueError):
            substream(0, -1)

    def test_matches_numpy_spawn(self):
        ours = spawn_seeds(123, 4)
        numpys = np.random.SeedSequence(123).spawn(4)
        for a, b in zip(ours, numpys):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_reproducible_across_calls(self):
        a = [s.generate_state(2).tolist() for s in spawn_seeds(9, 3)]
        b = [s.generate_state(2).tolist() for s in spawn_seeds(9, 3)]
        assert a == b


class TestSubstream:
    def test_equals_spawned_child(self):
        children = spawn_seeds(7, 6)
        for i in (0, 3, 5):
            assert (substream(7, i).generate_state(4).tolist()
                    == children[i].generate_state(4).tolist())

    def test_independent_of_sibling_count(self):
        # substream(base, i) never depends on how many siblings exist.
        lone = substream(7, 2).generate_state(4).tolist()
        among_many = spawn_seeds(7, 100)[2].generate_state(4).tolist()
        assert lone == among_many

    def test_streams_are_distinct(self):
        draws = set()
        for i in range(50):
            gen = as_generator(substream(0, i))
            draws.add(tuple(gen.integers(0, 1 << 62, 4).tolist()))
        assert len(draws) == 50

    def test_base_seeds_are_distinct(self):
        a = as_generator(substream(0, 1)).integers(0, 1 << 62, 8)
        b = as_generator(substream(1, 1)).integers(0, 1 << 62, 8)
        assert (a != b).any()

    def test_independence_low_correlation(self):
        # Adjacent substreams should look uncorrelated: normalised sample
        # correlation of long normal draws stays near zero.
        x = as_generator(substream(42, 0)).normal(size=4000)
        y = as_generator(substream(42, 1)).normal(size=4000)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.08
