"""Tests for the standards registry and the HT MCS table."""

import pytest

from repro.errors import ConfigurationError
from repro.standards.mcs import HT_MCS_TABLE, ht_data_rate_mbps
from repro.standards.registry import (
    DOT11N_20MHZ,
    GENERATIONS,
    evolution_table,
    get_standard,
    rate_at_snr,
)


class TestGenerations:
    def test_all_five_present(self):
        assert set(GENERATIONS) == {
            "802.11", "802.11b", "802.11a", "802.11g", "802.11n",
        }

    def test_paper_max_rates(self):
        """The paper's rate ladder: 2 -> 11 -> 54 -> 600 Mbps."""
        assert get_standard("802.11").max_rate_mbps == 2
        assert get_standard("802.11b").max_rate_mbps == 11
        assert get_standard("802.11a").max_rate_mbps == 54
        assert get_standard("802.11g").max_rate_mbps == 54
        assert get_standard("802.11n").max_rate_mbps == pytest.approx(600.0)

    def test_paper_spectral_efficiencies(self):
        """0.1 -> ~0.5 -> 2.7 -> 15 bps/Hz."""
        assert get_standard("802.11").spectral_efficiency == pytest.approx(0.1)
        assert get_standard("802.11b").spectral_efficiency == pytest.approx(
            0.55
        )
        assert get_standard("802.11a").spectral_efficiency == pytest.approx(
            2.7
        )
        assert get_standard("802.11n").spectral_efficiency == pytest.approx(
            15.0
        )

    def test_only_first_generation_mandated_spreading(self):
        assert get_standard("802.11").mandatory_spreading
        assert not get_standard("802.11b").mandatory_spreading

    def test_required_snr_monotone_in_rate_single_stream(self):
        # Within one stream count higher rates always need more SNR; the
        # 802.11n table as a whole is not monotone (2-stream QPSK can need
        # less SNR than 1-stream 16-QAM at the same rate), so MIMO is
        # checked per stream count.
        for name in ("802.11", "802.11b", "802.11a", "802.11g"):
            rates = sorted(get_standard(name).rates,
                           key=lambda r: r.rate_mbps)
            snrs = [r.required_snr_db for r in rates]
            assert snrs == sorted(snrs), name
        for streams in (1, 2, 3, 4):
            entries = [r for r in get_standard("802.11n").rates
                       if r.modulation.endswith(f"x{streams}")]
            entries.sort(key=lambda r: r.rate_mbps)
            snrs = [r.required_snr_db for r in entries]
            assert snrs == sorted(snrs), f"{streams} streams"

    def test_best_rate_nondecreasing_in_snr(self):
        std = get_standard("802.11n")
        rates = [std.rate_at_snr(s).rate_mbps if std.rate_at_snr(s) else 0.0
                 for s in range(0, 50, 2)]
        assert rates == sorted(rates)

    def test_unknown_standard_rejected(self):
        with pytest.raises(ConfigurationError):
            get_standard("802.11ax")


class TestRateAtSnr:
    def test_high_snr_gives_max_rate(self):
        assert rate_at_snr("802.11a", 50.0) == 54.0

    def test_low_snr_gives_none(self):
        assert rate_at_snr("802.11a", 0.0) is None

    def test_intermediate(self):
        assert rate_at_snr("802.11a", 21.0) == 24.0

    def test_dsss_works_at_0db(self):
        assert rate_at_snr("802.11", 0.0) == 1.0


class TestEvolutionTable:
    def test_fivefold_ratios(self):
        rows = {r["standard"]: r for r in evolution_table()}
        for name in ("802.11b", "802.11a", "802.11n"):
            assert 4.0 < rows[name]["ratio_to_previous"] < 6.5, name

    def test_first_generation_has_no_ratio(self):
        rows = evolution_table()
        assert rows[0]["ratio_to_previous"] is None

    def test_chronological_order(self):
        years = [r["year"] for r in evolution_table()]
        assert years == sorted(years)


class TestHtMcs:
    def test_table_has_32_entries(self):
        assert len(HT_MCS_TABLE) == 32

    def test_streams_from_index(self):
        assert HT_MCS_TABLE[0].spatial_streams == 1
        assert HT_MCS_TABLE[15].spatial_streams == 2
        assert HT_MCS_TABLE[31].spatial_streams == 4

    def test_headline_rates(self):
        assert ht_data_rate_mbps(7, 20, "long") == pytest.approx(65.0)
        assert ht_data_rate_mbps(15, 40, "short") == pytest.approx(300.0)
        assert ht_data_rate_mbps(31, 40, "short") == pytest.approx(600.0)

    def test_short_gi_speedup(self):
        long_gi = ht_data_rate_mbps(7, 20, "long")
        short_gi = ht_data_rate_mbps(7, 20, "short")
        assert short_gi / long_gi == pytest.approx(4.0 / 3.6)

    def test_spectral_efficiency_15(self):
        assert HT_MCS_TABLE[31].spectral_efficiency(40, "short") == (
            pytest.approx(15.0)
        )

    def test_rate_scales_linearly_with_streams(self):
        r1 = ht_data_rate_mbps(7)
        r4 = ht_data_rate_mbps(31)
        assert r4 == pytest.approx(4 * r1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ht_data_rate_mbps(40)
        with pytest.raises(ConfigurationError):
            HT_MCS_TABLE[0].data_rate_mbps(30)

    def test_20mhz_registry_variant(self):
        assert DOT11N_20MHZ.max_rate_mbps == pytest.approx(260.0)
