"""Tests for the standards registry and the generation MCS tables."""

import pytest

from repro.errors import ConfigurationError
from repro.standards.mcs import (
    HE_MCS_TABLE,
    HT_MCS_TABLE,
    VHT_MCS_TABLE,
    get_family,
    ht_data_rate_mbps,
)
from repro.standards.registry import (
    DOT11N_20MHZ,
    GENERATIONS,
    RateEntry,
    Standard,
    _family_rates,
    evolution_table,
    generation_order,
    get_standard,
    rate_at_snr,
)


class TestGenerations:
    def test_all_seven_present(self):
        assert set(GENERATIONS) == {
            "802.11", "802.11b", "802.11a", "802.11g", "802.11n",
            "802.11ac", "802.11ax",
        }

    def test_paper_max_rates(self):
        """The paper's rate ladder: 2 -> 11 -> 54 -> 600 Mbps."""
        assert get_standard("802.11").max_rate_mbps == 2
        assert get_standard("802.11b").max_rate_mbps == 11
        assert get_standard("802.11a").max_rate_mbps == 54
        assert get_standard("802.11g").max_rate_mbps == 54
        assert get_standard("802.11n").max_rate_mbps == pytest.approx(600.0)

    def test_paper_spectral_efficiencies(self):
        """0.1 -> ~0.5 -> 2.7 -> 15 bps/Hz."""
        assert get_standard("802.11").spectral_efficiency == pytest.approx(0.1)
        assert get_standard("802.11b").spectral_efficiency == pytest.approx(
            0.55
        )
        assert get_standard("802.11a").spectral_efficiency == pytest.approx(
            2.7
        )
        assert get_standard("802.11n").spectral_efficiency == pytest.approx(
            15.0
        )

    def test_only_first_generation_mandated_spreading(self):
        assert get_standard("802.11").mandatory_spreading
        assert not get_standard("802.11b").mandatory_spreading

    def test_required_snr_monotone_in_rate_single_stream(self):
        # Within one stream count higher rates always need more SNR; the
        # 802.11n table as a whole is not monotone (2-stream QPSK can need
        # less SNR than 1-stream 16-QAM at the same rate), so MIMO is
        # checked per stream count.
        for name in ("802.11", "802.11b", "802.11a", "802.11g"):
            rates = sorted(get_standard(name).rates,
                           key=lambda r: r.rate_mbps)
            snrs = [r.required_snr_db for r in rates]
            assert snrs == sorted(snrs), name
        for streams in (1, 2, 3, 4):
            entries = [r for r in get_standard("802.11n").rates
                       if r.modulation.endswith(f"x{streams}")]
            entries.sort(key=lambda r: r.rate_mbps)
            snrs = [r.required_snr_db for r in entries]
            assert snrs == sorted(snrs), f"{streams} streams"

    def test_best_rate_nondecreasing_in_snr(self):
        std = get_standard("802.11n")
        rates = [std.rate_at_snr(s).rate_mbps if std.rate_at_snr(s) else 0.0
                 for s in range(0, 50, 2)]
        assert rates == sorted(rates)

    def test_unknown_standard_rejected(self):
        with pytest.raises(ConfigurationError):
            get_standard("802.11zz")

    def test_post_paper_headline_rates(self):
        """The published VHT/HE headline rates: 6.93 and 9.6 Gbps."""
        assert get_standard("802.11ac").max_rate_mbps == pytest.approx(
            6933.3, abs=0.1
        )
        assert get_standard("802.11ax").max_rate_mbps == pytest.approx(
            9607.8, abs=0.1
        )

    def test_post_paper_spectral_efficiencies(self):
        assert get_standard("802.11ac").spectral_efficiency == (
            pytest.approx(43.33, abs=0.01)
        )
        assert get_standard("802.11ax").spectral_efficiency == (
            pytest.approx(60.05, abs=0.01)
        )


class TestRateAtSnr:
    def test_high_snr_gives_max_rate(self):
        assert rate_at_snr("802.11a", 50.0) == 54.0

    def test_low_snr_gives_none(self):
        assert rate_at_snr("802.11a", 0.0) is None

    def test_intermediate(self):
        assert rate_at_snr("802.11a", 21.0) == 24.0

    def test_dsss_works_at_0db(self):
        assert rate_at_snr("802.11", 0.0) == 1.0


class TestEvolutionTable:
    def test_fivefold_ratios(self):
        rows = {r["standard"]: r for r in evolution_table()}
        for name in ("802.11b", "802.11a", "802.11n"):
            assert 4.0 < rows[name]["ratio_to_previous"] < 6.5, name

    def test_first_generation_has_no_ratio(self):
        rows = evolution_table()
        assert rows[0]["ratio_to_previous"] is None

    def test_chronological_order(self):
        years = [r["year"] for r in evolution_table()]
        assert years == sorted(years)


class TestHtMcs:
    def test_table_has_32_entries(self):
        assert len(HT_MCS_TABLE) == 32

    def test_streams_from_index(self):
        assert HT_MCS_TABLE[0].spatial_streams == 1
        assert HT_MCS_TABLE[15].spatial_streams == 2
        assert HT_MCS_TABLE[31].spatial_streams == 4

    def test_headline_rates(self):
        assert ht_data_rate_mbps(7, 20, "long") == pytest.approx(65.0)
        assert ht_data_rate_mbps(15, 40, "short") == pytest.approx(300.0)
        assert ht_data_rate_mbps(31, 40, "short") == pytest.approx(600.0)

    def test_short_gi_speedup(self):
        long_gi = ht_data_rate_mbps(7, 20, "long")
        short_gi = ht_data_rate_mbps(7, 20, "short")
        assert short_gi / long_gi == pytest.approx(4.0 / 3.6)

    def test_spectral_efficiency_15(self):
        assert HT_MCS_TABLE[31].spectral_efficiency(40, "short") == (
            pytest.approx(15.0)
        )

    def test_rate_scales_linearly_with_streams(self):
        r1 = ht_data_rate_mbps(7)
        r4 = ht_data_rate_mbps(31)
        assert r4 == pytest.approx(4 * r1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ht_data_rate_mbps(40)
        with pytest.raises(ConfigurationError):
            HT_MCS_TABLE[0].data_rate_mbps(30)

    def test_20mhz_registry_variant(self):
        assert DOT11N_20MHZ.max_rate_mbps == pytest.approx(260.0)


class TestGenerationOrder:
    def test_seed_five_order_matches_old_hand_list(self):
        """Regression: the year-derived ordering reproduces the list
        that used to be hand-maintained in evolution_table()."""
        legacy = ["802.11", "802.11b", "802.11a", "802.11g", "802.11n"]
        derived = [n for n in generation_order() if n in legacy]
        assert derived == legacy

    def test_new_generations_slot_in_after_11n(self):
        order = generation_order()
        assert order[-2:] == ["802.11ac", "802.11ax"]

    def test_evolution_table_covers_every_generation(self):
        assert [r["standard"] for r in evolution_table()] == (
            generation_order()
        )


class TestRateAtSnrTieBreak:
    def test_tie_breaks_toward_lower_required_snr(self):
        std = Standard(
            name="tie", year=2000, phy_type="X", band_ghz=5.0,
            bandwidth_mhz=20.0,
            rates=(
                RateEntry(10.0, 20.0, "greedy"),
                RateEntry(10.0, 12.0, "frugal"),
                RateEntry(10.0, 15.0, "middling"),
            ),
        )
        assert std.rate_at_snr(25.0).modulation == "frugal"

    def test_real_tie_in_11n_table(self):
        # At 34 dB the best 40 MHz SGI rate is 360 Mbps, reachable as
        # both 16-QAM 3/4 x4 (33 dB) and 64-QAM 2/3 x3 (34 dB); the
        # cheaper mode must win.
        std = get_standard("802.11n")
        chosen = std.rate_at_snr(34.0)
        tied = [r for r in std.rates
                if r.rate_mbps == chosen.rate_mbps
                and r.required_snr_db <= 34.0]
        assert len(tied) > 1, "expected a genuine tie at 34 dB"
        assert chosen.rate_mbps == pytest.approx(360.0)
        assert chosen.required_snr_db == min(
            r.required_snr_db for r in tied
        )
        assert chosen.modulation == "16-QAM x4"


class TestPeakWidthSpectralEfficiency:
    def test_multi_width_generation_uses_peak_width(self):
        ac = get_standard("802.11ac")
        assert ac.channel_widths_mhz == (20.0, 40.0, 80.0, 160.0)
        assert ac.peak_bandwidth_mhz == 160.0
        assert ac.spectral_efficiency == pytest.approx(
            ac.max_rate_mbps / 160.0
        )

    def test_single_width_generation_uses_base_width(self):
        a = get_standard("802.11a")
        assert a.channel_widths_mhz == ()
        assert a.peak_bandwidth_mhz == 20.0
        assert a.spectral_efficiency == pytest.approx(54.0 / 20.0)

    def test_11n_widths_declared(self):
        assert get_standard("802.11n").peak_bandwidth_mhz == 40.0


class TestRegistryDeterminism:
    @pytest.mark.parametrize("name,family,bw,gi", [
        ("802.11n", "HT", 40, "short"),
        ("802.11ac", "VHT", 160, "short"),
        ("802.11ax", "HE", 160, "short"),
    ])
    def test_rates_rebuild_identically(self, name, family, bw, gi):
        assert get_standard(name).rates == _family_rates(family, bw, gi)

    def test_evolution_table_stable_across_calls(self):
        assert evolution_table() == evolution_table()

    @pytest.mark.parametrize("name", ["802.11ac", "802.11ax"])
    def test_required_snr_monotone_per_stream(self, name):
        std = get_standard(name)
        streams = {int(r.modulation.rsplit("x", 1)[1])
                   for r in std.rates}
        for s in streams:
            entries = sorted(
                (r for r in std.rates
                 if r.modulation.endswith(f"x{s}")),
                key=lambda r: r.rate_mbps,
            )
            snrs = [r.required_snr_db for r in entries]
            assert snrs == sorted(snrs), f"{name} x{s}"


class TestVhtHeMcs:
    def test_table_sizes(self):
        assert len(VHT_MCS_TABLE) == 10 * 8
        assert len(HE_MCS_TABLE) == 12 * 8

    def test_vht_headline(self):
        entry = VHT_MCS_TABLE[(9, 8)]
        assert entry.data_rate_mbps(160, "short") == pytest.approx(
            6933.3, abs=0.1
        )

    def test_he_headline(self):
        entry = HE_MCS_TABLE[(11, 8)]
        assert entry.data_rate_mbps(160, "short") == pytest.approx(
            9607.8, abs=0.1
        )

    def test_he_symbol_time_4x(self):
        he, vht = get_family("HE"), get_family("VHT")
        assert he.symbol_time("long") == pytest.approx(
            4 * vht.symbol_time("long")
        )

    def test_ht_family_reproduces_legacy_table(self):
        fam = get_family("HT")
        assert fam.table() == HT_MCS_TABLE

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            get_family("VHT").mcs(10)
        with pytest.raises(ConfigurationError):
            get_family("HE").mcs(12)
        with pytest.raises(ConfigurationError):
            get_family("VHT").mcs(0, 9)
        with pytest.raises(ConfigurationError):
            get_family("nope")

    def test_vht_rate_scales_linearly_with_streams(self):
        fam = get_family("VHT")
        r1 = fam.mcs(7, 1).data_rate_mbps(80, "long")
        r8 = fam.mcs(7, 8).data_rate_mbps(80, "long")
        assert r8 == pytest.approx(8 * r1)
