"""Tests for repro.utils.bits."""

import numpy as np
import pytest

from repro.errors import CodingError
from repro.utils.bits import (
    bits_from_bytes,
    bits_to_int,
    bytes_from_bits,
    count_bit_errors,
    int_to_bits,
    random_bits,
)


class TestRandomBits:
    def test_length_and_alphabet(self, rng):
        bits = random_bits(1000, rng)
        assert bits.size == 1000
        assert set(np.unique(bits)) <= {0, 1}

    def test_roughly_balanced(self, rng):
        bits = random_bits(10000, rng)
        assert 0.45 < bits.mean() < 0.55

    def test_zero_length(self, rng):
        assert random_bits(0, rng).size == 0


class TestBytesRoundTrip:
    def test_round_trip(self):
        data = bytes(range(256))
        assert bytes_from_bits(bits_from_bytes(data)) == data

    def test_lsb_first(self):
        bits = bits_from_bytes(b"\x01")
        assert bits.tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_non_multiple_of_eight_raises(self):
        with pytest.raises(CodingError):
            bytes_from_bits(np.array([1, 0, 1]))

    def test_empty(self):
        assert bytes_from_bits(np.array([], dtype=np.int8)) == b""


class TestIntBits:
    def test_round_trip(self):
        for value in [0, 1, 5, 127, 4095]:
            assert bits_to_int(int_to_bits(value, 12)) == value

    def test_little_endian(self):
        assert int_to_bits(1, 4).tolist() == [1, 0, 0, 0]

    def test_overflow_raises(self):
        with pytest.raises(CodingError):
            int_to_bits(16, 4)

    def test_negative_raises(self):
        with pytest.raises(CodingError):
            int_to_bits(-1, 4)


class TestCountBitErrors:
    def test_zero_for_identical(self, rng):
        bits = random_bits(128, rng)
        assert count_bit_errors(bits, bits.copy()) == 0

    def test_counts_flips(self, rng):
        bits = random_bits(128, rng)
        flipped = bits.copy()
        flipped[:5] ^= 1
        assert count_bit_errors(bits, flipped) == 5

    def test_shape_mismatch_raises(self):
        with pytest.raises(CodingError):
            count_bit_errors(np.zeros(4), np.zeros(5))
