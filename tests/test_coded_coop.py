"""Tests for coded cooperation (incremental-redundancy relaying)."""

import pytest

from repro.coop.coded import CodedCooperationSimulator
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def results():
    sim = CodedCooperationSimulator(info_bits=96, relay_gain_db=3.0, rng=5)
    return {snr: sim.run(snr, n_blocks=250) for snr in (6.0, 12.0)}


class TestCooperationGains:
    def test_repetition_beats_direct(self, results):
        for snr, r in results.items():
            assert r.bler_repetition <= r.bler_direct, snr

    def test_coded_beats_direct(self, results):
        """The paper's 'with appropriate coding' relay improves on no
        cooperation at all."""
        for snr, r in results.items():
            assert r.bler_coded <= r.bler_direct, snr

    def test_relay_decode_rate_rises_with_snr(self, results):
        assert results[12.0].relay_decode_rate >= results[6.0].relay_decode_rate

    def test_all_rates_are_probabilities(self, results):
        for r in results.values():
            for value in (r.bler_direct, r.bler_repetition, r.bler_coded,
                          r.relay_decode_rate):
                assert 0.0 <= value <= 1.0

    def test_errors_vanish_at_high_snr(self):
        sim = CodedCooperationSimulator(rng=9)
        r = sim.run(25.0, n_blocks=100)
        assert r.bler_repetition <= 0.02
        assert r.bler_coded <= 0.05


class TestConfiguration:
    def test_sweep_returns_per_snr(self):
        sim = CodedCooperationSimulator(rng=1)
        out = sim.sweep([8.0, 16.0], n_blocks=40)
        assert [r.snr_db for r in out] == [8.0, 16.0]

    def test_tiny_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            CodedCooperationSimulator(info_bits=4)

    def test_mask_partition(self):
        sim = CodedCooperationSimulator(info_bits=96)
        assert (sim._mask1 | sim._mask2).all()
        assert not (sim._mask1 & sim._mask2).any()
