"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.mac.events import EventScheduler


class TestScheduler:
    def test_time_order(self):
        sched = EventScheduler()
        hits = []
        sched.schedule(2.0, hits.append, "late")
        sched.schedule(1.0, hits.append, "early")
        sched.schedule(1.5, hits.append, "middle")
        sched.run()
        assert hits == ["early", "middle", "late"]

    def test_fifo_tie_break(self):
        sched = EventScheduler()
        hits = []
        sched.schedule(1.0, hits.append, "first")
        sched.schedule(1.0, hits.append, "second")
        sched.run()
        assert hits == ["first", "second"]

    def test_clock_advances(self):
        sched = EventScheduler()
        times = []
        sched.schedule(0.5, lambda: times.append(sched.now))
        sched.schedule(2.5, lambda: times.append(sched.now))
        sched.run()
        assert times == [0.5, 2.5]

    def test_until_cuts_off(self):
        sched = EventScheduler()
        hits = []
        sched.schedule(1.0, hits.append, "in")
        sched.schedule(5.0, hits.append, "out")
        sched.run(until=2.0)
        assert hits == ["in"]
        assert sched.now == 2.0
        assert sched.pending == 1

    def test_schedule_in_relative(self):
        sched = EventScheduler()
        hits = []

        def chain():
            hits.append(sched.now)
            if len(hits) < 3:
                sched.schedule_in(1.0, chain)

        sched.schedule(0.0, chain)
        sched.run()
        assert hits == [0.0, 1.0, 2.0]

    def test_past_scheduling_rejected(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.schedule(0.5, lambda: None)

    def test_stop_from_callback(self):
        sched = EventScheduler()
        hits = []
        sched.schedule(1.0, lambda: (hits.append(1), sched.stop()))
        sched.schedule(2.0, hits.append, 2)
        sched.run()
        assert hits == [(None, None)] or len(hits) == 1

    def test_max_events_cap(self):
        sched = EventScheduler()
        counter = []

        def loop():
            counter.append(1)
            sched.schedule_in(0.1, loop)

        sched.schedule(0.0, loop)
        processed = sched.run(max_events=10)
        assert processed == 10
