"""Tests for traffic sources and frame descriptors."""

import pytest

from repro.constants import MAC_HEADER_BYTES, FCS_BYTES
from repro.errors import ConfigurationError
from repro.mac.frames import Frame, FrameType
from repro.mac.traffic import PoissonSource, SaturatedSource


class TestSaturated:
    def test_always_has_packet(self):
        src = SaturatedSource(1500)
        assert src.has_packet(0.0)
        assert src.has_packet(1e9)

    def test_payload_size(self):
        assert SaturatedSource(700).next_payload(0.0) == 700

    def test_invalid_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            SaturatedSource(0)


class TestPoisson:
    def test_rate_approximately_met(self, rng):
        src = PoissonSource(100.0, 500, rng=rng)
        count = 0
        t = 0.0
        while t < 10.0:
            if src.has_packet(t):
                src.next_payload(t)
                count += 1
            t += 1e-3
        assert count == pytest.approx(1000, rel=0.15)

    def test_no_packet_before_first_arrival(self, rng):
        src = PoissonSource(0.001, 500, rng=rng)
        assert not src.has_packet(0.0)

    def test_backlog_accumulates(self, rng):
        src = PoissonSource(1000.0, 500, rng=rng)
        src.has_packet(1.0)
        assert src.backlog > 500

    def test_pop_without_packet_raises(self, rng):
        src = PoissonSource(0.001, 500, rng=rng)
        with pytest.raises(ConfigurationError):
            src.next_payload(0.0)

    def test_next_arrival_in_future(self, rng):
        src = PoissonSource(10.0, 500, rng=rng)
        assert src.next_arrival_time(5.0) > 5.0

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            PoissonSource(0.0, 500, rng=rng)


class TestFrames:
    def test_data_frame_size(self):
        frame = Frame(FrameType.DATA, 0, 1, payload_bytes=1000)
        assert frame.total_bytes == MAC_HEADER_BYTES + 1000 + FCS_BYTES

    def test_control_frames_fixed_size(self):
        assert Frame(FrameType.ACK, 0, 1).total_bytes == 14
        assert Frame(FrameType.RTS, 0, 1).total_bytes == 20
        assert Frame(FrameType.CTS, 0, 1).total_bytes == 14

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            Frame(FrameType.DATA, 0, 1, payload_bytes=-1)

    def test_metadata_independent(self):
        a = Frame(FrameType.DATA, 0, 1)
        b = Frame(FrameType.DATA, 0, 1)
        a.metadata["x"] = 1
        assert "x" not in b.metadata
