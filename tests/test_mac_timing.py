"""Tests for MAC timing and airtimes."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming


@pytest.fixture(scope="module")
def t11a():
    return MacTiming.for_standard("802.11a")


@pytest.fixture(scope="module")
def t11b():
    return MacTiming.for_standard("802.11b")


class TestIfs:
    def test_difs_definition(self, t11a):
        assert t11a.difs_s == pytest.approx(t11a.sifs_s + 2 * t11a.slot_s)

    def test_ofdm_vs_dsss_slots(self, t11a, t11b):
        assert t11a.slot_s == pytest.approx(9e-6)
        assert t11b.slot_s == pytest.approx(20e-6)

    def test_eifs_longer_than_difs(self, t11a):
        assert t11a.eifs_s > t11a.difs_s


class TestAirtime:
    def test_ofdm_symbol_quantisation(self, t11a):
        """OFDM airtimes step in whole 4 us symbols."""
        base = t11a.data_airtime_s(100, 54)
        nudge = t11a.data_airtime_s(101, 54)
        assert nudge - base in (0.0, 4e-6)

    def test_known_1500b_54mbps(self, t11a):
        # 16+6+8*(1500+28) bits over 216 bits/sym = 57 syms + 20us = 248 us.
        assert t11a.data_airtime_s(1500, 54) == pytest.approx(248e-6)

    def test_dsss_linear_in_bytes(self, t11b):
        base = t11b.data_airtime_s(100, 11)
        double = t11b.data_airtime_s(200, 11)
        assert double - base == pytest.approx(800 / 11e6)

    def test_long_preamble_dominates_small_frames(self, t11b):
        """The famous 802.11b inefficiency: 192 us preamble at any rate."""
        airtime = t11b.data_airtime_s(40, 11)
        assert airtime > 192e-6
        assert 192e-6 / airtime > 0.75

    def test_faster_rate_shorter(self, t11a):
        assert t11a.data_airtime_s(1500, 54) < t11a.data_airtime_s(1500, 6)

    def test_invalid_rate_rejected(self, t11a):
        with pytest.raises(ConfigurationError):
            t11a.data_airtime_s(100, 0)

    def test_negative_payload_rejected(self, t11a):
        with pytest.raises(ConfigurationError):
            t11a.data_airtime_s(-1, 54)


class TestExchangeDurations:
    def test_success_includes_ack(self, t11a):
        t = t11a.success_duration_s(1500, 54)
        assert t > t11a.data_airtime_s(1500, 54) + t11a.sifs_s

    def test_rts_cts_adds_overhead(self, t11a):
        assert t11a.success_duration_s(1500, 54, rts_cts=True) > (
            t11a.success_duration_s(1500, 54, rts_cts=False)
        )

    def test_rts_collision_cheaper_than_data_collision(self, t11a):
        """Why RTS/CTS pays off with many stations: tiny collisions."""
        assert t11a.collision_duration_s(1500, 54, rts_cts=True) < (
            t11a.collision_duration_s(1500, 54, rts_cts=False)
        )
