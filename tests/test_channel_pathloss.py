"""Tests for path loss and shadowing."""

import numpy as np
import pytest

from repro.channel.pathloss import (
    breakpoint_path_loss_db,
    free_space_path_loss_db,
    log_distance_path_loss_db,
    received_power_dbm,
    shadowing_db,
)
from repro.errors import ConfigurationError


class TestFreeSpace:
    def test_known_value(self):
        # FSPL at 1 m, 2.4 GHz ~ 40.05 dB.
        assert free_space_path_loss_db(1.0, 2.4e9) == pytest.approx(40.05,
                                                                    abs=0.1)

    def test_20db_per_decade(self):
        l10 = free_space_path_loss_db(10.0, 5.18e9)
        l100 = free_space_path_loss_db(100.0, 5.18e9)
        assert l100 - l10 == pytest.approx(20.0)

    def test_higher_frequency_more_loss(self):
        assert free_space_path_loss_db(10, 5.18e9) > free_space_path_loss_db(
            10, 2.4e9
        )

    def test_invalid_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            free_space_path_loss_db(0.0, 2.4e9)


class TestLogDistance:
    def test_35db_per_decade(self):
        l10 = log_distance_path_loss_db(10.0, 5.18e9, exponent=3.5)
        l100 = log_distance_path_loss_db(100.0, 5.18e9, exponent=3.5)
        assert l100 - l10 == pytest.approx(35.0)

    def test_anchored_at_reference(self):
        assert log_distance_path_loss_db(1.0, 5.18e9) == pytest.approx(
            free_space_path_loss_db(1.0, 5.18e9)
        )


class TestBreakpoint:
    def test_free_space_inside_breakpoint(self):
        assert breakpoint_path_loss_db(3.0, 5.18e9, 5.0) == pytest.approx(
            free_space_path_loss_db(3.0, 5.18e9)
        )

    def test_continuous_at_breakpoint(self):
        just_in = breakpoint_path_loss_db(4.999, 5.18e9, 5.0)
        just_out = breakpoint_path_loss_db(5.001, 5.18e9, 5.0)
        assert just_out - just_in < 0.1

    def test_steeper_beyond_breakpoint(self):
        l10 = breakpoint_path_loss_db(10.0, 5.18e9, 5.0)
        l100 = breakpoint_path_loss_db(100.0, 5.18e9, 5.0)
        assert l100 - l10 == pytest.approx(35.0)

    def test_vectorised(self):
        out = breakpoint_path_loss_db(np.array([1.0, 10.0]), 5.18e9)
        assert out.shape == (2,)


class TestShadowing:
    def test_zero_mean(self, rng):
        samples = shadowing_db(20000, sigma_db=6.0, rng=rng)
        assert abs(np.mean(samples)) < 0.2
        assert np.std(samples) == pytest.approx(6.0, rel=0.05)

    def test_scalar_output(self, rng):
        assert isinstance(shadowing_db(rng=rng), float)

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            shadowing_db(10, sigma_db=-1.0, rng=rng)


class TestReceivedPower:
    def test_decreases_with_distance(self):
        p5 = received_power_dbm(17.0, 5.0, 5.18e9)
        p50 = received_power_dbm(17.0, 50.0, 5.18e9)
        assert p50 < p5

    def test_gain_helps(self):
        base = received_power_dbm(17.0, 20.0, 5.18e9)
        with_gain = received_power_dbm(17.0, 20.0, 5.18e9, antenna_gain_db=6.0)
        assert with_gain - base == pytest.approx(6.0)
