"""Tests for repro.phy.modulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.modulation import Modulator, modulation_name
from repro.utils.bits import random_bits

ALL_ORDERS = [1, 2, 4, 6, 8, 10]


class TestConstellation:
    @pytest.mark.parametrize("bps", ALL_ORDERS)
    def test_unit_average_power(self, bps):
        const = Modulator(bps).constellation
        assert np.mean(np.abs(const) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("bps", ALL_ORDERS)
    def test_all_points_distinct(self, bps):
        const = Modulator(bps).constellation
        assert len(np.unique(np.round(const, 9))) == 2 ** bps

    def test_bpsk_is_real(self):
        const = Modulator(1).constellation
        assert np.allclose(const.imag, 0.0)
        assert sorted(const.real.tolist()) == [-1.0, 1.0]

    def test_qpsk_phases(self):
        const = Modulator(2).constellation
        assert np.allclose(np.abs(const), 1.0)

    @pytest.mark.parametrize("bad", [0, 3, 5, 7, 9, 12])
    def test_invalid_order_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Modulator(bad)

    def test_non_integer_order_rejected(self):
        with pytest.raises(ConfigurationError):
            Modulator(2.0)

    @pytest.mark.parametrize("bps", [2, 4, 6, 8])
    def test_gray_coding_single_bit_neighbours(self, bps):
        """Nearest horizontal/vertical neighbours differ in exactly one bit."""
        mod = Modulator(bps)
        const = mod.constellation
        labels = np.array([[(v >> b) & 1 for b in range(bps)]
                           for v in range(2 ** bps)])
        min_dist = np.min(
            np.abs(const[:, None] - const[None, :])
            + np.eye(const.size) * 10
        )
        for i in range(const.size):
            for j in range(const.size):
                if i == j:
                    continue
                if np.abs(const[i] - const[j]) <= min_dist * 1.001:
                    assert np.sum(labels[i] != labels[j]) == 1


class TestRoundTrip:
    @pytest.mark.parametrize("bps", ALL_ORDERS)
    def test_hard_round_trip(self, bps, rng):
        bits = random_bits(bps * 200, rng)
        mod = Modulator(bps)
        assert np.array_equal(mod.demodulate_hard(mod.modulate(bits)), bits)

    @pytest.mark.parametrize("bps", ALL_ORDERS)
    def test_soft_signs_match_hard(self, bps, rng):
        mod = Modulator(bps)
        bits = random_bits(bps * 100, rng)
        noisy = mod.modulate(bits) + 0.005 * (
            rng.normal(size=100) + 1j * rng.normal(size=100)
        )
        llrs = mod.demodulate_soft(noisy, noise_var=0.00005)
        assert np.array_equal((llrs < 0).astype(np.int8), bits)

    def test_wrong_bit_count_raises(self):
        with pytest.raises(ConfigurationError):
            Modulator(4).modulate(np.zeros(3, dtype=np.int8))


class TestSoftLLR:
    def test_llr_scales_with_noise(self, rng):
        mod = Modulator(2)
        symbol = mod.modulate(np.array([0, 0], dtype=np.int8))
        small = mod.demodulate_soft(symbol, 0.01)
        large = mod.demodulate_soft(symbol, 1.0)
        assert np.all(np.abs(small) > np.abs(large))

    def test_per_symbol_noise_variance(self, rng):
        mod = Modulator(1)
        symbols = mod.modulate(np.array([0, 0], dtype=np.int8))
        llrs = mod.demodulate_soft(symbols, np.array([0.01, 1.0]))
        assert abs(llrs[0]) > abs(llrs[1])

    def test_zero_noise_does_not_crash(self):
        mod = Modulator(2)
        sym = mod.modulate(np.array([1, 0], dtype=np.int8))
        llrs = mod.demodulate_soft(sym, 0.0)
        assert np.all(np.isfinite(llrs))


class TestErrorPositions:
    def test_identical_symbols_no_errors(self, rng):
        mod = Modulator(4)
        bits = random_bits(400, rng)
        syms = mod.modulate(bits)
        assert not mod.symbol_error_positions(syms, syms).any()

    def test_flipped_symbol_detected(self, rng):
        mod = Modulator(2)
        syms = mod.modulate(random_bits(20, rng))
        bad = syms.copy()
        bad[3] = -bad[3]
        assert mod.symbol_error_positions(syms, bad)[3]


class TestNames:
    def test_known_names(self):
        assert modulation_name(1) == "BPSK"
        assert modulation_name(2) == "QPSK"
        assert modulation_name(4) == "16-QAM"
        assert modulation_name(6) == "64-QAM"

    def test_derived_high_order_names(self):
        assert modulation_name(8) == "256-QAM"
        assert modulation_name(10) == "1024-QAM"

    @pytest.mark.parametrize("bad", [0, 3, 5, 7, 9, 12])
    def test_unknown_raises(self, bad):
        with pytest.raises(ConfigurationError):
            modulation_name(bad)


class TestRailFastPath:
    """256-/1024-QAM demap per I/Q rail; must equal the full-matrix path."""

    @pytest.mark.parametrize("bps", [8, 10])
    def test_rail_hard_equals_full_search(self, bps, rng):
        mod = Modulator(bps)
        bits = random_bits(bps * 64, rng)
        noisy = mod.modulate(bits) + 0.02 * (
            rng.normal(size=64) + 1j * rng.normal(size=64)
        )
        nearest = np.argmin(
            np.abs(noisy[:, None] - mod.constellation[None, :]), axis=1
        )
        full = mod._labels[nearest].ravel()
        assert np.array_equal(mod.demodulate_hard(noisy), full)

    @pytest.mark.parametrize("bps", [8, 10])
    def test_rail_soft_equals_full_maxlog(self, bps, rng):
        mod = Modulator(bps)
        bits = random_bits(bps * 64, rng)
        noisy = mod.modulate(bits) + 0.02 * (
            rng.normal(size=64) + 1j * rng.normal(size=64)
        )
        nv = np.full(64, 0.0008)
        metric = -(np.abs(noisy[:, None] - mod.constellation[None, :]) ** 2)
        metric = metric / nv[:, None]
        ref = np.empty((64, bps))
        for bit in range(bps):
            mask0 = mod._bit0_masks[bit]
            ref[:, bit] = (metric[:, mask0].max(axis=1)
                           - metric[:, ~mask0].max(axis=1))
        assert np.allclose(mod.demodulate_soft(noisy, nv), ref.ravel())
