"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_link_defaults(self):
        args = build_parser().parse_args(["link", "ofdm-6"])
        assert args.channel == "awgn"
        assert args.snr == 25.0

    def test_rates_rejects_unknown_standard(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rates", "802.11zz"])


class TestCommands:
    def test_evolution(self, capsys):
        assert main(["evolution"]) == 0
        out = capsys.readouterr().out
        assert "802.11n" in out
        assert "multiplier" in out

    def test_link(self, capsys):
        code = main(["link", "ofdm-6", "awgn", "20",
                     "--packets", "3", "--bytes", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PER" in out
        assert "goodput" in out

    def test_mac(self, capsys):
        assert main(["mac", "3", "--duration", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Bianchi" in out

    def test_regulatory(self, capsys):
        assert main(["regulatory"]) == 0
        assert "Barker" in capsys.readouterr().out

    def test_rates(self, capsys):
        assert main(["rates", "802.11b"]) == 0
        out = capsys.readouterr().out
        assert "11.0 Mbps" in out

    def test_experiment_list_flag(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E17" in out
        # Every registered id appears with its one-line description.
        from repro.core.experiments import list_experiments
        for key, desc in list_experiments():
            assert key in out
            assert desc in out

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run", "e3-dsss-cck"])
        assert args.workers == 1
        assert args.results == "results"
        assert not args.force
        # Failure knobs default to "defer to the spec".
        assert args.retries is None
        assert args.timeout is None

    def test_campaign_show_failures_flag(self):
        args = build_parser().parse_args(["campaign", "show", "x",
                                          "--failures"])
        assert args.failures

    def test_library_errors_become_clean_exit(self, tmp_path, capsys):
        # Path traversal through a campaign name: rejected with a
        # message on stderr and exit 2, not a traceback.
        code = main(["campaign", "show", "../../etc",
                     "--results", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "filesystem-safe" in err


class TestTraceCli:
    def _spec_file(self, tmp_path):
        import json
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps({
            "name": "tiny", "kind": "link",
            "factors": {"phy": ["dsss-1", "dsss-2"],
                        "snr_db": [0.0, 8.0]},
            "fixed": {"channel": "awgn", "n_packets": 3,
                      "payload_bytes": 20},
            "base_seed": 3,
        }))
        return str(spec_path)

    def test_campaign_run_trace_then_report(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        results = str(tmp_path / "results")
        assert main(["campaign", "run", spec,
                     "--results", results, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "repro trace report tiny" in out

        assert main(["trace", "report", "tiny",
                     "--results", results]) == 0
        out = capsys.readouterr().out
        assert "trace report: tiny" in out
        assert "per-point timing" in out
        assert "slowest spans" in out
        assert "campaign.cache.miss" in out

    def test_trace_report_without_trace_says_so_and_exits_1(self, tmp_path,
                                                            capsys):
        code = main(["trace", "report", "ghost",
                     "--results", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "no trace recorded" in out and "--trace" in out

    def test_trace_report_on_empty_trace_exits_1(self, tmp_path, capsys):
        trace_dir = tmp_path / "ghost" / "trace"
        trace_dir.mkdir(parents=True)
        (trace_dir / "trace.jsonl").write_text("")  # zero spans
        code = main(["trace", "report", "ghost",
                     "--results", str(tmp_path)])
        assert code == 1
        assert "no trace recorded" in capsys.readouterr().out

    def test_link_trace_prints_summary(self, capsys):
        assert main(["link", "ofdm-6", "awgn", "20", "--packets", "3",
                     "--bytes", "40", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace summary:" in out
        assert "mc.run_trials" in out


class TestWatchCli:
    def _run_campaign(self, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "watched", "kind": "link",
            "factors": {"phy": ["dsss-1"], "snr_db": [0.0, 8.0]},
            "fixed": {"channel": "awgn", "n_packets": 3,
                      "payload_bytes": 20},
            "base_seed": 3,
        }))
        results = str(tmp_path / "results")
        assert main(["campaign", "run", str(spec_path),
                     "--results", results]) == 0
        return results

    def test_watch_once_renders_progress(self, tmp_path, capsys):
        results = self._run_campaign(tmp_path)
        capsys.readouterr()
        assert main(["campaign", "watch", "watched", "--once",
                     "--results", results]) == 0
        out = capsys.readouterr().out
        assert "campaign watched [done]" in out
        assert "2/2" in out

    def test_watch_once_json_is_the_raw_document(self, tmp_path, capsys):
        import json

        results = self._run_campaign(tmp_path)
        capsys.readouterr()
        assert main(["campaign", "watch", "watched", "--once", "--json",
                     "--results", results]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "done"
        assert doc["points"]["done"] + doc["points"]["cached"] == 2
        assert "workers" in doc and "t_read" in doc

    def test_watch_once_without_status_is_clean_error(self, tmp_path,
                                                      capsys):
        code = main(["campaign", "watch", "ghost", "--once",
                     "--results", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBenchCli:
    def _dump(self, path, rows):
        import json

        path.write_text(json.dumps({
            "schema": 1,
            "metrics": [dict(zip(("benchmark", "name", "value", "units"),
                                 row)) for row in rows]}))
        return str(path)

    def test_identical_dumps_pass(self, tmp_path, capsys):
        rows = [("b1", "speedup", 6.0, "x"), ("b1", "duration", 1.0, "s")]
        a = self._dump(tmp_path / "a.json", rows)
        assert main(["bench", "diff", a, a]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "0 regression(s)" in out

    def test_ratio_regression_fails_but_slower_seconds_do_not(
            self, tmp_path, capsys):
        base = self._dump(tmp_path / "a.json",
                          [("b1", "speedup", 6.0, "x"),
                           ("b1", "duration", 1.0, "s")])
        cur = self._dump(tmp_path / "b.json",
                         [("b1", "speedup", 2.0, "x"),      # regressed
                          ("b1", "duration", 10.0, "s")])   # informational
        assert main(["bench", "diff", base, cur]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "speedup" in out
        assert "1 regression(s)" in out

    def test_improvement_never_regresses(self, tmp_path, capsys):
        base = self._dump(tmp_path / "a.json", [("b1", "speedup", 6.0, "x")])
        cur = self._dump(tmp_path / "b.json", [("b1", "speedup", 60.0, "x")])
        assert main(["bench", "diff", base, cur]) == 0
        capsys.readouterr()

    def test_tol_override_loosens_the_gate(self, tmp_path, capsys):
        base = self._dump(tmp_path / "a.json", [("b1", "speedup", 6.0, "x")])
        cur = self._dump(tmp_path / "b.json", [("b1", "speedup", 3.0, "x")])
        assert main(["bench", "diff", base, cur]) == 1
        capsys.readouterr()
        assert main(["bench", "diff", base, cur,
                     "--tol", "b1::speedup=0.9"]) == 0
        capsys.readouterr()

    def test_json_report_shape(self, tmp_path, capsys):
        import json

        rows = [("b1", "per", 0.2, "fraction")]
        a = self._dump(tmp_path / "a.json", rows)
        assert main(["bench", "diff", a, a, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["n_compared"] == 1
        assert report["rows"][0]["status"] == "ok"

    def test_missing_dump_is_clean_error(self, tmp_path, capsys):
        a = self._dump(tmp_path / "a.json", [("b1", "x", 1.0, "x")])
        assert main(["bench", "diff", a, str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err
