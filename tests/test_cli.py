"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_link_defaults(self):
        args = build_parser().parse_args(["link", "ofdm-6"])
        assert args.channel == "awgn"
        assert args.snr == 25.0

    def test_rates_rejects_unknown_standard(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rates", "802.11zz"])


class TestCommands:
    def test_evolution(self, capsys):
        assert main(["evolution"]) == 0
        out = capsys.readouterr().out
        assert "802.11n" in out
        assert "multiplier" in out

    def test_link(self, capsys):
        code = main(["link", "ofdm-6", "awgn", "20",
                     "--packets", "3", "--bytes", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PER" in out
        assert "goodput" in out

    def test_mac(self, capsys):
        assert main(["mac", "3", "--duration", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Bianchi" in out

    def test_regulatory(self, capsys):
        assert main(["regulatory"]) == 0
        assert "Barker" in capsys.readouterr().out

    def test_rates(self, capsys):
        assert main(["rates", "802.11b"]) == 0
        out = capsys.readouterr().out
        assert "11.0 Mbps" in out

    def test_experiment_list_flag(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E17" in out
        # Every registered id appears with its one-line description.
        from repro.core.experiments import list_experiments
        for key, desc in list_experiments():
            assert key in out
            assert desc in out

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run", "e3-dsss-cck"])
        assert args.workers == 1
        assert args.results == "results"
        assert not args.force
        # Failure knobs default to "defer to the spec".
        assert args.retries is None
        assert args.timeout is None

    def test_campaign_show_failures_flag(self):
        args = build_parser().parse_args(["campaign", "show", "x",
                                          "--failures"])
        assert args.failures

    def test_library_errors_become_clean_exit(self, tmp_path, capsys):
        # Path traversal through a campaign name: rejected with a
        # message on stderr and exit 2, not a traceback.
        code = main(["campaign", "show", "../../etc",
                     "--results", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "filesystem-safe" in err


class TestTraceCli:
    def _spec_file(self, tmp_path):
        import json
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps({
            "name": "tiny", "kind": "link",
            "factors": {"phy": ["dsss-1", "dsss-2"],
                        "snr_db": [0.0, 8.0]},
            "fixed": {"channel": "awgn", "n_packets": 3,
                      "payload_bytes": 20},
            "base_seed": 3,
        }))
        return str(spec_path)

    def test_campaign_run_trace_then_report(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        results = str(tmp_path / "results")
        assert main(["campaign", "run", spec,
                     "--results", results, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "repro trace report tiny" in out

        assert main(["trace", "report", "tiny",
                     "--results", results]) == 0
        out = capsys.readouterr().out
        assert "trace report: tiny" in out
        assert "per-point timing" in out
        assert "slowest spans" in out
        assert "campaign.cache.miss" in out

    def test_trace_report_without_trace_is_clean_error(self, tmp_path,
                                                       capsys):
        code = main(["trace", "report", "ghost",
                     "--results", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--trace" in err

    def test_link_trace_prints_summary(self, capsys):
        assert main(["link", "ofdm-6", "awgn", "20", "--packets", "3",
                     "--bytes", "40", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace summary:" in out
        assert "mc.run_trials" in out
