"""Tests for ADC quantisation, and the union bound."""

import numpy as np
import pytest

from repro.analysis.ber_theory import ber_psk_awgn
from repro.analysis.union_bound import coding_gain_db, union_bound_ber
from repro.errors import ConfigurationError
from repro.phy.dsss import DsssPhy
from repro.phy.ofdm import OfdmPhy
from repro.phy.quantization import (
    quantization_snr_db,
    quantize,
    required_bits,
)
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def ofdm_wave():
    rng = np.random.default_rng(41)
    return OfdmPhy(54).transmit(
        bytes(rng.integers(0, 256, 200, dtype=np.uint8).tolist())
    )


class TestQuantize:
    def test_output_shape_and_type(self, ofdm_wave):
        out = quantize(ofdm_wave, 8)
        assert out.shape == ofdm_wave.shape
        assert out.dtype == np.complex128

    def test_snr_improves_6db_per_bit(self, ofdm_wave):
        """The converter law: ~6 dB of SQNR per added bit."""
        s6 = quantization_snr_db(ofdm_wave, 6)
        s8 = quantization_snr_db(ofdm_wave, 8)
        assert s8 - s6 == pytest.approx(12.0, abs=3.0)

    def test_clipping_hurts(self, ofdm_wave):
        rms = float(np.sqrt(np.mean(np.abs(ofdm_wave) ** 2)))
        generous = quantization_snr_db(ofdm_wave, 10, clip_level=4 * rms)
        harsh = quantization_snr_db(ofdm_wave, 10, clip_level=0.5 * rms)
        assert harsh < generous

    def test_invalid_bits_rejected(self, ofdm_wave):
        with pytest.raises(ConfigurationError):
            quantize(ofdm_wave, 0)

    def test_zero_waveform_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize(np.zeros(10, complex), 8)


class TestRequiredBits:
    def test_ofdm_needs_more_bits_than_dsss(self, ofdm_wave, rng):
        """PAPR's hidden cost: the ADC must cover OFDM's peaks, so the same
        target SQNR costs more bits than for constant-envelope DSSS."""
        dsss_wave = DsssPhy(2).modulate(random_bits(2000, rng))
        target = 30.0
        need_ofdm = required_bits(ofdm_wave, target)
        need_dsss = required_bits(dsss_wave, target)
        assert need_ofdm is not None and need_dsss is not None
        assert need_ofdm >= need_dsss

    def test_monotone_in_target(self, ofdm_wave):
        low = required_bits(ofdm_wave, 20.0)
        high = required_bits(ofdm_wave, 45.0)
        assert high is None or low is None or high >= low

    def test_unreachable_returns_none(self, ofdm_wave):
        rms = float(np.sqrt(np.mean(np.abs(ofdm_wave) ** 2)))
        assert required_bits(ofdm_wave, 60.0, clip_level=0.3 * rms) is None

    def test_quantized_ofdm_still_decodes(self, ofdm_wave):
        """8-bit conversion is transparent to the 54 Mbps link."""
        phy = OfdmPhy(54)
        rng = np.random.default_rng(4)
        msg = bytes(rng.integers(0, 256, 200, dtype=np.uint8).tolist())
        wave = phy.transmit(msg)
        digitised = quantize(wave, 8)
        sqnr = quantization_snr_db(wave, 8)
        assert phy.receive(digitised, 10 ** (-sqnr / 10)) == msg


class TestUnionBound:
    def test_is_upper_bound_at_moderate_snr(self, rng):
        """Simulated soft-Viterbi BER stays at/below the bound."""
        from repro.phy import convolutional as cc

        ebn0_db = 4.0
        sigma2 = 1.0 / (2 * 0.5 * 10 ** (ebn0_db / 10))
        errs = total = 0
        for _ in range(60):
            bits = random_bits(300, rng)
            coded = cc.encode(bits)
            y = (1.0 - 2.0 * coded) + rng.normal(0, np.sqrt(sigma2),
                                                 coded.size)
            decoded = cc.viterbi_decode(2 * y / sigma2, 300)
            errs += int((decoded != bits).sum())
            total += 300
        assert errs / total <= 2.0 * float(union_bound_ber(ebn0_db))

    def test_bound_below_uncoded(self):
        """At 5+ dB the coded bound sits far below uncoded BPSK."""
        assert union_bound_ber(5.0) < 0.1 * ber_psk_awgn(5.0)

    def test_decreasing_in_snr(self):
        values = union_bound_ber(np.array([3.0, 5.0, 7.0]))
        assert np.all(np.diff(values) < 0)

    def test_rate_ordering(self):
        """Lower code rate = stronger bound at equal Eb/N0."""
        assert union_bound_ber(5.0, "1/2") < union_bound_ber(5.0, "3/4")

    def test_asymptotic_gain_values(self):
        assert coding_gain_db("1/2") == pytest.approx(7.0, abs=0.1)
        assert coding_gain_db("3/4") == pytest.approx(5.7, abs=0.2)

    def test_unknown_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            union_bound_ber(5.0, "5/6")
