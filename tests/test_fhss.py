"""Tests for the 802.11 FHSS PHY."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.fhss import (
    FhssPhy,
    GfskModem,
    N_CHANNELS,
    collision_probability,
    gaussian_pulse,
    hop_sequence,
)
from repro.utils.bits import random_bits


class TestHopSequence:
    def test_channels_in_range(self):
        seq = hop_sequence(0, 500)
        assert seq.min() >= 0
        assert seq.max() < N_CHANNELS

    def test_visits_all_channels_per_cycle(self):
        seq = hop_sequence(3, N_CHANNELS)
        assert len(set(seq.tolist())) == N_CHANNELS

    def test_family_members_are_shifts(self):
        a = hop_sequence(0, N_CHANNELS)
        b = hop_sequence(5, N_CHANNELS)
        assert np.array_equal((a + 5) % N_CHANNELS, b)

    def test_two_patterns_rarely_collide(self):
        a = hop_sequence(0, N_CHANNELS)
        b = hop_sequence(7, N_CHANNELS)
        collisions = int((a == b).sum())
        assert collisions <= 1


class TestCollisionProbability:
    def test_single_network_no_collisions(self):
        assert collision_probability(1) == 0.0

    def test_increases_with_networks(self):
        probs = [collision_probability(n) for n in (2, 5, 15, 40)]
        assert probs == sorted(probs)

    def test_two_network_value(self):
        assert collision_probability(2) == pytest.approx(1.0 / 79.0)

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            collision_probability(0)


class TestGfsk:
    def test_gaussian_pulse_unit_area(self):
        assert gaussian_pulse().sum() == pytest.approx(1.0)

    def test_bad_bt_rejected(self):
        with pytest.raises(ConfigurationError):
            gaussian_pulse(bt=0)

    @pytest.mark.parametrize("levels", [2, 4])
    def test_clean_round_trip(self, levels, rng):
        modem = GfskModem(levels=levels,
                          modulation_index=0.32 if levels == 2 else 0.45)
        bits = random_bits(modem.bits_per_symbol * 400, rng)
        out = modem.demodulate(modem.modulate(bits), bits.size)
        assert np.array_equal(out, bits)

    def test_constant_envelope(self, rng):
        """GFSK's whole point: PAPR ~ 0 dB (PA friendly, unlike OFDM)."""
        sig = GfskModem().modulate(random_bits(100, rng))
        assert np.allclose(np.abs(sig), 1.0)

    def test_noise_resilience(self, rng):
        modem = GfskModem()
        bits = random_bits(500, rng)
        sig = modem.modulate(bits)
        noisy = sig + 0.1 * (rng.normal(size=sig.size)
                             + 1j * rng.normal(size=sig.size))
        errors = int((modem.demodulate(noisy, bits.size) != bits).sum())
        assert errors / bits.size < 0.01

    def test_invalid_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            GfskModem(levels=8)

    def test_short_signal_rejected(self, rng):
        modem = GfskModem()
        sig = modem.modulate(random_bits(4, rng))
        with pytest.raises(DemodulationError):
            modem.demodulate(sig, 400)


class TestFhssPhy:
    def test_dwell_round_trip(self, rng):
        phy = FhssPhy(rate_mbps=1)
        bits = random_bits(200, rng)
        out = phy.receive_dwell(phy.transmit_dwell(bits), bits.size)
        assert np.array_equal(out, bits)

    def test_collision_degrades_link(self, rng):
        phy = FhssPhy(rate_mbps=1)
        bits = random_bits(400, rng)
        sig = phy.transmit_dwell(bits)
        jammed = phy.receive_dwell(sig, bits.size, collided=True,
                                   interference_db=3.0, rng=rng)
        clean = phy.receive_dwell(sig, bits.size, rng=rng)
        assert (jammed != bits).sum() > (clean != bits).sum()

    def test_channel_for_hop(self):
        phy = FhssPhy(pattern_index=2)
        assert 0 <= phy.channel_for_hop(10) < N_CHANNELS

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FhssPhy(rate_mbps=3)
