"""Property-based tests (hypothesis) on the library's core invariants.

Each property pins an algebraic guarantee that must hold for *every*
input, not just the fixtures the unit tests chose: codec round trips,
involutions, permutation bijectivity, conservation laws.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mac.timing import MacTiming
from repro.phy import convolutional as cc
from repro.phy.interleaver import (
    deinterleave,
    ht_deinterleave,
    ht_interleave,
    interleave,
)
from repro.phy.mimo.beamforming import water_filling
from repro.phy.mimo.stbc import alamouti_decode, alamouti_encode
from repro.phy.modulation import Modulator
from repro.phy.scrambler import scramble
from repro.utils.bits import bits_from_bytes, bytes_from_bits
from repro.utils.crc import append_fcs, check_fcs

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=400).map(
    lambda v: np.array(v, dtype=np.int8)
)


class TestCodecRoundTrips:
    @given(data=st.binary(min_size=0, max_size=300))
    def test_bits_bytes_inverse(self, data):
        assert bytes_from_bits(bits_from_bytes(data)) == data

    @given(bits=bit_arrays, seed=st.integers(1, 127))
    def test_scrambler_involution(self, bits, seed):
        assert np.array_equal(scramble(scramble(bits, seed), seed), bits)

    @given(data=st.binary(min_size=0, max_size=200))
    def test_fcs_accepts_own_output(self, data):
        assert check_fcs(append_fcs(data))

    @given(data=st.binary(min_size=1, max_size=100),
           byte_idx=st.integers(0, 99), bit=st.integers(0, 7))
    def test_fcs_rejects_any_single_bit_flip(self, data, byte_idx, bit):
        frame = bytearray(append_fcs(data))
        frame[byte_idx % len(data)] ^= 1 << bit
        assert not check_fcs(bytes(frame))


class TestModulationProperties:
    @given(bps=st.sampled_from([1, 2, 4, 6]),
           seed=st.integers(0, 2 ** 31))
    @settings(max_examples=25)
    def test_round_trip_any_bits(self, bps, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, bps * 32).astype(np.int8)
        mod = Modulator(bps)
        assert np.array_equal(mod.demodulate_hard(mod.modulate(bits)), bits)

    @given(bps=st.sampled_from([1, 2, 4, 6]))
    def test_symbol_power_never_exceeds_peak(self, bps):
        const = Modulator(bps).constellation
        # Peak-to-average of a square QAM constellation is bounded by M.
        assert np.max(np.abs(const) ** 2) <= 2 ** bps


class TestConvolutionalProperties:
    @given(seed=st.integers(0, 2 ** 31),
           n_bits=st.integers(8, 200),
           rate=st.sampled_from(["1/2", "2/3", "3/4", "5/6"]))
    @settings(max_examples=20, deadline=None)
    def test_clean_viterbi_inverts_encoder(self, seed, n_bits, rate):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, n_bits).astype(np.int8)
        coded = cc.encode_punctured(bits, rate=rate)
        decoded = cc.viterbi_decode(cc.hard_to_soft(coded), n_bits, rate=rate)
        assert np.array_equal(decoded, bits)

    @given(seed=st.integers(0, 2 ** 31), n_bits=st.integers(8, 120))
    @settings(max_examples=20, deadline=None)
    def test_single_flip_always_corrected(self, seed, n_bits):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, n_bits).astype(np.int8)
        soft = cc.hard_to_soft(cc.encode(bits))
        flip = int(rng.integers(0, soft.size))
        soft[flip] = -soft[flip]
        assert np.array_equal(cc.viterbi_decode(soft, n_bits), bits)


class TestInterleaverProperties:
    @given(seed=st.integers(0, 2 ** 31),
           geometry=st.sampled_from([(48, 1), (96, 2), (192, 4), (288, 6)]),
           n_symbols=st.integers(1, 4))
    @settings(max_examples=25)
    def test_legacy_inverse(self, seed, geometry, n_symbols):
        n_cbps, n_bpsc = geometry
        rng = np.random.default_rng(seed)
        soft = rng.normal(size=n_cbps * n_symbols)
        out = deinterleave(interleave(soft, n_cbps, n_bpsc), n_cbps, n_bpsc)
        assert np.allclose(out, soft)

    @given(seed=st.integers(0, 2 ** 31),
           n_bpsc=st.sampled_from([1, 2, 4, 6]),
           bw=st.sampled_from([20, 40]))
    @settings(max_examples=25)
    def test_ht_inverse(self, seed, n_bpsc, bw):
        rng = np.random.default_rng(seed)
        n = (52 if bw == 20 else 108) * n_bpsc
        soft = rng.normal(size=n)
        assert np.allclose(
            ht_deinterleave(ht_interleave(soft, n_bpsc, bw), n_bpsc, bw),
            soft,
        )


class TestStbcProperties:
    @given(seed=st.integers(0, 2 ** 31),
           n_rx=st.integers(1, 4),
           n_pairs=st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_noiseless_decode_exact(self, seed, n_rx, n_pairs):
        rng = np.random.default_rng(seed)
        syms = np.exp(1j * rng.uniform(0, 2 * np.pi, 2 * n_pairs))
        h = (rng.normal(size=(n_rx, 2))
             + 1j * rng.normal(size=(n_rx, 2))) / np.sqrt(2)
        if np.sum(np.abs(h) ** 2) < 1e-6:
            return  # pathological all-zero draw
        est, _ = alamouti_decode(h @ alamouti_encode(syms), h)
        assert np.allclose(est, syms, atol=1e-8)


class TestWaterFillingProperties:
    @given(seed=st.integers(0, 2 ** 31),
           n=st.integers(1, 8),
           power=st.floats(0.1, 50.0))
    @settings(max_examples=40)
    def test_conservation_and_nonnegativity(self, seed, n, power):
        rng = np.random.default_rng(seed)
        gains = rng.uniform(0.05, 3.0, n)
        p = water_filling(gains, power)
        assert np.all(p >= -1e-12)
        assert p.sum() == np.float64(np.float64(p.sum()))
        assert abs(p.sum() - power) < 1e-9 * max(1.0, power)

    @given(seed=st.integers(0, 2 ** 31), power=st.floats(0.1, 10.0))
    @settings(max_examples=25)
    def test_water_level_uniform_on_active_set(self, seed, power):
        rng = np.random.default_rng(seed)
        gains = rng.uniform(0.1, 2.0, 5)
        p = water_filling(gains, power)
        levels = p + 1.0 / gains ** 2
        active = p > 1e-12
        if active.sum() > 1:
            assert np.ptp(levels[active]) < 1e-9


class TestTimingProperties:
    @given(payload=st.integers(0, 2304),
           rate=st.sampled_from([6, 9, 12, 18, 24, 36, 48, 54]))
    @settings(max_examples=40)
    def test_airtime_positive_and_monotone_in_payload(self, payload, rate):
        timing = MacTiming.for_standard("802.11a")
        t = timing.data_airtime_s(payload, rate)
        t_bigger = timing.data_airtime_s(payload + 100, rate)
        assert t > 0
        assert t_bigger >= t

    @given(payload=st.integers(1, 2304))
    @settings(max_examples=30)
    def test_success_longer_than_airtime(self, payload):
        timing = MacTiming.for_standard("802.11b")
        assert timing.success_duration_s(payload, 11) > (
            timing.data_airtime_s(payload, 11)
        )
