"""Tests for AGC and the sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    sensitivity_dbm,
    sensitivity_table,
    snr_from_sensitivity,
)
from repro.errors import ConfigurationError, DemodulationError
from repro.phy.agc import AutomaticGainControl
from repro.phy.ofdm import OfdmPhy
from repro.phy.quantization import quantize


@pytest.fixture(scope="module")
def ofdm_wave():
    rng = np.random.default_rng(52)
    return OfdmPhy(24).transmit(
        bytes(rng.integers(0, 256, 150, dtype=np.uint8).tolist())
    )


class TestAgc:
    def test_hits_target_rms(self, ofdm_wave):
        agc = AutomaticGainControl(full_scale=1.0, backoff_db=10.0)
        scaled, _ = agc.apply(0.01 * ofdm_wave)
        rms = np.sqrt(np.mean(np.abs(scaled[:160]) ** 2))
        assert 20 * np.log10(1.0 / rms) == pytest.approx(10.0, abs=0.5)

    def test_gain_inversely_tracks_input_level(self, ofdm_wave):
        agc = AutomaticGainControl()
        _, g_weak = agc.apply(0.001 * ofdm_wave)
        _, g_strong = agc.apply(0.1 * ofdm_wave)
        assert g_weak - g_strong == pytest.approx(40.0, abs=0.1)

    def test_ofdm_backoff_prevents_clipping(self, ofdm_wave):
        generous = AutomaticGainControl(backoff_db=12.0)
        assert generous.clip_fraction(ofdm_wave) < 0.001
        greedy = AutomaticGainControl(backoff_db=0.0)
        assert greedy.clip_fraction(ofdm_wave) > generous.clip_fraction(
            ofdm_wave
        )

    def test_agc_plus_adc_plus_decode(self, ofdm_wave):
        """Full front end: attenuated input -> AGC -> 8-bit ADC -> decode."""
        rng = np.random.default_rng(5)
        msg = bytes(rng.integers(0, 256, 150, dtype=np.uint8).tolist())
        phy = OfdmPhy(24)
        wave = 0.003 * phy.transmit(msg)  # weak arrival
        agc = AutomaticGainControl(full_scale=1.0, backoff_db=11.0)
        scaled, _ = agc.apply(wave)
        digitised = quantize(scaled, 8, clip_level=1.0)
        assert phy.receive(digitised, noise_var=1e-4) == msg

    def test_short_input_rejected(self):
        agc = AutomaticGainControl()
        with pytest.raises(DemodulationError):
            agc.settle(np.ones(10, complex))

    def test_silence_rejected(self):
        agc = AutomaticGainControl()
        with pytest.raises(DemodulationError):
            agc.settle(np.zeros(200, complex))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AutomaticGainControl(full_scale=0.0)


class TestSensitivity:
    def test_formula(self):
        # -94 dBm floor + 12 dB requirement = -82 dBm (802.11a 6 Mbps).
        assert sensitivity_dbm(12.0) == pytest.approx(-82.0, abs=0.1)

    def test_matches_standard_minima(self):
        """Our SNR table inverts to the 802.11a sensitivity column."""
        table = dict(sensitivity_table("802.11a"))
        assert table[6.0] == pytest.approx(-82.0, abs=0.5)
        assert table[54.0] == pytest.approx(-65.0, abs=0.5)

    def test_monotone_in_rate(self):
        table = sensitivity_table("802.11b")
        values = [s for _, s in table]
        assert values == sorted(values)

    def test_round_trip(self):
        snr = snr_from_sensitivity(sensitivity_dbm(17.5))
        assert snr == pytest.approx(17.5)

    def test_40mhz_costs_3db(self):
        narrow = sensitivity_dbm(20.0, bandwidth_hz=20e6)
        wide = sensitivity_dbm(20.0, bandwidth_hz=40e6)
        assert wide - narrow == pytest.approx(3.0, abs=0.1)
