"""Tests for the PSM/CAM power-save model."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.powersave import PowerSaveModel


@pytest.fixture(scope="module")
def model():
    return PowerSaveModel()


class TestPsm:
    def test_psm_saves_energy(self, model):
        psm = model.simulate("psm", 20.0, 5.0, 500, rng=1)
        cam = model.simulate("cam", 20.0, 5.0, 500, rng=1)
        assert psm.energy_j < cam.energy_j / 3

    def test_psm_costs_latency(self, model):
        psm = model.simulate("psm", 20.0, 5.0, 500, rng=2)
        cam = model.simulate("cam", 20.0, 5.0, 500, rng=2)
        assert psm.mean_latency_s > cam.mean_latency_s
        # Mean PSM latency ~ half a beacon interval.
        assert psm.mean_latency_s == pytest.approx(0.0512, rel=0.35)

    def test_duty_cycle_matches_analytic(self, model):
        result = model.simulate("psm", 60.0, 8.0, 500, rng=3)
        assert result.duty_cycle == pytest.approx(
            model.psm_duty_cycle(8.0, 500), rel=0.25
        )

    def test_all_packets_delivered(self, model):
        result = model.simulate("psm", 30.0, 10.0, 500, rng=4)
        # Poisson(10/s) over ~30 s: roughly 300 packets.
        assert result.packets_delivered == pytest.approx(300, rel=0.25)

    def test_idle_station_duty_is_beacon_only(self, model):
        result = model.simulate("psm", 30.0, 0.001, 500, rng=5)
        assert result.duty_cycle < 0.03

    def test_heavy_traffic_erodes_saving(self, model):
        light = model.simulate("psm", 20.0, 1.0, 500, rng=6)
        heavy = model.simulate("psm", 20.0, 200.0, 500, rng=6)
        assert heavy.average_power_w > light.average_power_w


class TestCam:
    def test_cam_full_duty(self, model):
        assert model.simulate("cam", 10.0, 5.0, 500,
                              rng=7).duty_cycle == 1.0

    def test_cam_near_awake_power(self, model):
        result = model.simulate("cam", 10.0, 5.0, 500, rng=8)
        assert result.average_power_w == pytest.approx(
            model.awake_power_w, rel=0.05
        )


class TestValidation:
    def test_unknown_mode_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.simulate("turbo", 1.0, 1.0)

    def test_doze_must_be_lower(self):
        with pytest.raises(ConfigurationError):
            PowerSaveModel(awake_power_w=0.1, doze_power_w=0.5)

    def test_energy_per_bit(self, model):
        result = model.simulate("psm", 20.0, 5.0, 500, rng=9)
        assert result.energy_per_bit_j(500) > 0
