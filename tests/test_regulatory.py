"""Tests for the regulatory-compliance module."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.dsss import DsssPhy
from repro.phy.ofdm import OfdmPhy
from repro.standards.regulatory import (
    check_spectral_mask,
    mask_limit_dbr,
    meets_spreading_mandate,
    occupied_bandwidth_hz,
    power_spectral_density,
    processing_gain_db_for,
    regulatory_report,
)
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def ofdm_wave():
    rng = np.random.default_rng(10)
    return OfdmPhy(54).transmit(
        bytes(rng.integers(0, 256, 400, dtype=np.uint8).tolist())
    )


class TestPsd:
    def test_ofdm_occupies_about_16mhz(self, ofdm_wave):
        """52 of 64 subcarriers at 312.5 kHz -> ~16.25 MHz occupied."""
        bw = occupied_bandwidth_hz(ofdm_wave, 20e6)
        assert 14e6 < bw < 18e6

    def test_dsss_occupies_most_of_the_channel(self, rng):
        wave = DsssPhy(1).modulate(random_bits(1500, rng))
        bw = occupied_bandwidth_hz(wave, 11e6)
        assert bw > 8e6

    def test_tone_is_narrow(self):
        tone = np.exp(2j * np.pi * 1e6 * np.arange(4000) / 20e6)
        assert occupied_bandwidth_hz(tone, 20e6) < 1e6

    def test_psd_normalised_to_peak(self, ofdm_wave):
        _, psd = power_spectral_density(ofdm_wave, 20e6)
        assert psd.max() == pytest.approx(0.0)

    def test_invalid_fraction_rejected(self, ofdm_wave):
        with pytest.raises(ConfigurationError):
            occupied_bandwidth_hz(ofdm_wave, 20e6, fraction=1.5)


class TestMask:
    def test_limit_interpolation(self):
        assert mask_limit_dbr(0.0) == 0.0
        assert mask_limit_dbr(11e6) == pytest.approx(-20.0)
        assert mask_limit_dbr(10e6) == pytest.approx(-10.0)
        assert mask_limit_dbr(50e6) == pytest.approx(-40.0)

    def test_ofdm_passes_in_band(self, ofdm_wave):
        result = check_spectral_mask(ofdm_wave, 20e6)
        assert result["compliant"]

    def test_wideband_noise_fails(self, rng):
        noise = rng.normal(size=8000) + 1j * rng.normal(size=8000)
        result = check_spectral_mask(noise, 20e6)
        assert not result["compliant"]


class TestMandate:
    def test_barker_complies(self):
        assert meets_spreading_mandate(11)

    def test_cck_does_not(self):
        """The whole point of 802.11b's rule change."""
        assert not meets_spreading_mandate(8)

    def test_gain_formula(self):
        assert processing_gain_db_for(10) == pytest.approx(10.0)

    def test_invalid_chips_rejected(self):
        with pytest.raises(ConfigurationError):
            processing_gain_db_for(0)


class TestReport:
    def test_five_rows(self):
        assert len(regulatory_report()) == 5

    def test_narrative_arc(self):
        rows = {r["standard"]: r for r in regulatory_report()}
        assert rows["802.11 (DSSS)"]["processing_gain_db"] > 10.0
        assert rows["802.11b (CCK)"]["processing_gain_db"] < 10.0
        assert rows["802.11a/g (OFDM)"]["processing_gain_db"] is None
