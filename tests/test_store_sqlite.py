"""Tests for the sqlite store backend and store-backend selection."""

import json
import os

import pytest

from repro.campaign import (CampaignSpec, ResultsStore, run_campaign)
from repro.campaign.store import (detect_store_backend, encode_record,
                                  make_store, resolve_store_backend,
                                  scan_campaigns)
from repro.campaign.store_sqlite import DB_FILE, SqliteResultsStore
from repro.errors import ConfigurationError


def tiny_spec(**overrides):
    """A four-point link campaign small enough for unit tests."""
    fields = dict(
        name="tiny", kind="link",
        factors={"phy": ["dsss-1", "dsss-2"], "snr_db": [0.0, 8.0]},
        fixed={"channel": "awgn", "n_packets": 3, "payload_bytes": 20},
        base_seed=3,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def sample_record(key="k1", index=0, **extra):
    record = {"key": key, "index": index, "outcome": "ok",
              "metrics": {"per": 0.5}}
    record.update(extra)
    return record


class TestSqliteStore:
    def test_append_load_roundtrip_dedupes(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        store.append("c", sample_record())
        store.append("c", sample_record(metrics={"per": 0.25}))
        loaded = store.load("c")
        assert len(loaded) == 1
        assert loaded[0]["metrics"]["per"] == 0.25  # upsert: last wins
        assert "cached" not in loaded[0]
        store.close()

    def test_records_identical_to_jsonl_backend(self, tmp_path):
        """Both backends persist the same canonical line, so a campaign
        can move between them without records drifting."""
        record = sample_record(metrics={"per": 0.5,
                                        "nan": float("nan"),
                                        "nested": [1.0, float("inf")]})
        jsonl = ResultsStore(tmp_path / "j")
        sqlite = SqliteResultsStore(tmp_path / "s")
        jsonl.append("c", dict(record))
        sqlite.append("c", dict(record))
        assert jsonl.load("c") == sqlite.load("c")
        # The sqlite row holds exactly the canonical encoded line.
        raw = next(iter(sqlite.iter_records("c")))
        assert encode_record(record) == encode_record(raw)
        sqlite.close()

    def test_iter_records_streams_in_grid_order(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        for index in (3, 0, 2, 1):
            store.append("c", sample_record(key=f"k{index}", index=index))
        cursor = store.iter_records("c")
        assert [r["index"] for r in cursor] == [0, 1, 2, 3]
        store.close()

    def test_count_and_outcome_counts(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        store.append("c", sample_record(key="a", index=0))
        store.append("c", sample_record(key="b", index=1,
                                        outcome="error"))
        store.append("c", sample_record(key="c", index=2,
                                        outcome="timeout"))
        assert store.count("c") == 3
        assert store.outcome_counts("c") == {
            "ok": 1, "error": 1, "timeout": 1}
        store.close()

    def test_append_many_is_one_transaction(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        store.append_many("c", [sample_record(key=f"k{i}", index=i)
                                for i in range(50)])
        assert store.count("c") == 50
        store.close()

    def test_keyless_record_rejected(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.append("c", {"index": 0, "outcome": "ok"})
        store.close()

    def test_campaigns_listing_and_spec(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        assert store.campaigns() == []
        run_campaign(tiny_spec(), store=store)
        assert store.campaigns() == [("tiny", 4)]
        assert store.load_spec("tiny") == tiny_spec()
        assert os.path.exists(tmp_path / "tiny" / DB_FILE)
        store.close()

    def test_rejects_unsafe_campaign_names(self, tmp_path):
        store = SqliteResultsStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.append("../evil", sample_record())
        store.close()


class TestSqliteCampaignRuns:
    def test_bit_identical_to_jsonl_run(self, tmp_path):
        spec = tiny_spec()
        jsonl = run_campaign(spec, store=ResultsStore(tmp_path / "j"))
        sqlite_store = SqliteResultsStore(tmp_path / "s")
        sqlite = run_campaign(spec, store=sqlite_store)
        assert jsonl.metrics_by_index() == sqlite.metrics_by_index()
        sqlite_store.close()

    def test_rerun_is_all_cache_hits(self, tmp_path):
        spec = tiny_spec()
        store = SqliteResultsStore(tmp_path)
        first = run_campaign(spec, store=store)
        second = run_campaign(spec, store=store)
        assert second.n_executed == 0
        assert second.n_cached == first.n_points
        assert second.metrics_by_index() == first.metrics_by_index()
        store.close()

    def test_parallel_run_appends_through_parent(self, tmp_path):
        spec = tiny_spec()
        store = SqliteResultsStore(tmp_path)
        result = run_campaign(spec, workers=2, store=store)
        assert result.n_executed == 4
        assert store.count("tiny") == 4
        store.close()


class TestBackendSelection:
    def test_make_store_explicit(self, tmp_path):
        assert make_store(tmp_path, "jsonl").backend == "jsonl"
        store = make_store(tmp_path, "sqlite")
        assert isinstance(store, SqliteResultsStore)
        store.close()

    def test_make_store_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        store = make_store(tmp_path)
        assert store.backend == "sqlite"
        store.close()
        monkeypatch.delenv("REPRO_STORE")
        assert make_store(tmp_path).backend == "jsonl"

    def test_make_store_rejects_unknown(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_store(tmp_path, "parquet")

    def test_detect_store_backend(self, tmp_path):
        assert detect_store_backend(tmp_path, "ghost") is None
        sqlite = SqliteResultsStore(tmp_path)
        sqlite.append("s-camp", sample_record())
        sqlite.close()
        ResultsStore(tmp_path).append("j-camp", sample_record())
        assert detect_store_backend(tmp_path, "s-camp") == "sqlite"
        assert detect_store_backend(tmp_path, "j-camp") == "jsonl"

    def test_resolve_precedence(self, tmp_path, monkeypatch):
        # Shed any ambient default (the CI matrix exports REPRO_STORE)
        # so each precedence step below is exercised in isolation.
        monkeypatch.delenv("REPRO_STORE", raising=False)
        ResultsStore(tmp_path).append("c", sample_record())
        # Detection of existing records beats the jsonl fallback...
        assert resolve_store_backend(root=tmp_path, name="c") == "jsonl"
        # ...the spec knob beats detection...
        assert resolve_store_backend(root=tmp_path, name="c",
                                     spec_default="sqlite") == "sqlite"
        # ...the environment beats the spec...
        monkeypatch.setenv("REPRO_STORE", "jsonl")
        assert resolve_store_backend(spec_default="sqlite") == "jsonl"
        # ...and an explicit flag beats everything.
        assert resolve_store_backend(explicit="sqlite") == "sqlite"

    def test_scan_campaigns_spans_backends(self, tmp_path):
        sqlite = SqliteResultsStore(tmp_path)
        run_campaign(tiny_spec(name="sq"), store=sqlite)
        sqlite.close()
        run_campaign(tiny_spec(name="js"),
                     store=ResultsStore(tmp_path))
        assert scan_campaigns(tmp_path) == [
            ("js", 4, "jsonl"), ("sq", 4, "sqlite")]

    def test_spec_store_knob_roundtrip(self, tmp_path):
        spec = tiny_spec(store="sqlite", backend="local-queue")
        path = tmp_path / "s.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_json(path)
        assert loaded.store == "sqlite"
        assert loaded.backend == "local-queue"
        # Old specs (no knobs) load with None defaults.
        data = tiny_spec().to_dict()
        del data["store"], data["backend"]
        path.write_text(json.dumps(data))
        loaded = CampaignSpec.from_json(path)
        assert loaded.store is None and loaded.backend is None

    @pytest.mark.parametrize("bad", [{"store": "parquet"},
                                     {"backend": "slurm"}])
    def test_spec_rejects_unknown_knobs(self, bad):
        with pytest.raises(ConfigurationError):
            tiny_spec(**bad)


class TestStreamingReport:
    def make_big_campaign(self, tmp_path, n_rows=100, n_cols=100):
        """A 10^4-record campaign written directly (no simulation)."""
        store = SqliteResultsStore(tmp_path)
        records = []
        index = 0
        for a in range(n_rows):
            for b in range(n_cols):
                records.append({
                    "key": f"k{index:05d}", "index": index,
                    "outcome": "ok",
                    "kind": "link", "campaign": "big",
                    "params": {"a": a, "b": b},
                    "metrics": {"v": float(a + b)},
                })
                index += 1
        store.append_many("big", records)
        store.write_spec(tiny_spec(
            name="big", factors={"a": list(range(n_rows)),
                                 "b": list(range(n_cols))},
            fixed={"channel": "awgn", "n_packets": 1,
                   "payload_bytes": 20},
            meta={"report": {"value": "v", "rows": "a", "cols": "b"}}))
        return store

    def test_report_streams_without_loading_all(self, tmp_path,
                                                monkeypatch, capsys):
        """``report`` on a 10^4-record sqlite campaign must use the
        streaming cursor — materializing the full record list is the
        exact failure this backend exists to avoid."""
        from repro.cli import main
        store = self.make_big_campaign(tmp_path)
        assert store.count("big") == 10_000
        store.close()

        def no_load(self, name):
            raise AssertionError("report must not load() all records")

        monkeypatch.setattr(SqliteResultsStore, "load", no_load)
        assert main(["campaign", "report", "big",
                     "--results", str(tmp_path),
                     "--store", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "a \\ b" in out

    def test_show_streams_too(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        store = self.make_big_campaign(tmp_path, n_rows=10, n_cols=10)
        store.close()
        monkeypatch.setattr(
            SqliteResultsStore, "load",
            lambda self, name: (_ for _ in ()).throw(AssertionError()))
        assert main(["campaign", "show", "big",
                     "--results", str(tmp_path),
                     "--store", "sqlite"]) == 0
        assert "100 points" in capsys.readouterr().out
