"""Tests for the tapped-delay-line multipath channel."""

import numpy as np
import pytest

from repro.channel.models import TGN_PROFILES, tgn_channel
from repro.channel.multipath import TappedDelayLine, exponential_pdp
from repro.errors import ConfigurationError


class TestPdp:
    def test_sums_to_one(self):
        pdp = exponential_pdp(50e-9, 50e-9)
        assert pdp.sum() == pytest.approx(1.0)

    def test_zero_spread_is_flat(self):
        assert exponential_pdp(0.0, 50e-9).tolist() == [1.0]

    def test_monotone_decay(self):
        pdp = exponential_pdp(100e-9, 50e-9)
        assert np.all(np.diff(pdp) < 0)

    def test_measured_rms_delay_spread(self):
        """The sampled PDP's RMS delay spread approximates the target."""
        target = 100e-9
        period = 10e-9
        pdp = exponential_pdp(target, period, cutoff_db=40)
        delays = np.arange(pdp.size) * period
        mean = np.sum(pdp * delays)
        rms = np.sqrt(np.sum(pdp * (delays - mean) ** 2))
        assert rms == pytest.approx(target, rel=0.15)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            exponential_pdp(-1.0, 1e-9)


class TestTappedDelayLine:
    def test_draw_shape(self, rng):
        tdl = TappedDelayLine(2, 3, 50e-9, 20e6, rng=rng)
        assert tdl.draw().shape == (2, 3, tdl.n_taps)

    def test_unit_average_energy(self, rng):
        tdl = TappedDelayLine(1, 1, 50e-9, 20e6, rng=rng)
        energies = [np.sum(np.abs(tdl.draw()) ** 2) for _ in range(2000)]
        assert np.mean(energies) == pytest.approx(1.0, rel=0.1)

    def test_ricean_first_tap_has_bias(self, rng):
        tdl = TappedDelayLine(1, 1, 50e-9, 20e6, k_factor_db=20.0, rng=rng)
        first_taps = np.array([tdl.draw()[0, 0, 0] for _ in range(500)])
        assert abs(np.mean(first_taps)) > 0.5

    def test_apply_output_shape(self, rng):
        tdl = TappedDelayLine(3, 2, 30e-9, 20e6, rng=rng)
        out = tdl.apply(np.ones((2, 100), dtype=complex))
        assert out.shape == (3, 100)

    def test_apply_flat_channel_is_scaling(self, rng):
        tdl = TappedDelayLine(1, 1, 0.0, 20e6, rng=rng)
        taps = tdl.draw()
        x = np.exp(1j * rng.uniform(0, 6.28, 50))[None, :]
        y = tdl.apply(x, taps)
        assert np.allclose(y, taps[0, 0, 0] * x)

    def test_wrong_stream_count_rejected(self, rng):
        tdl = TappedDelayLine(1, 2, 0.0, 20e6, rng=rng)
        with pytest.raises(ConfigurationError):
            tdl.apply(np.ones((3, 10), dtype=complex))

    def test_frequency_response_shape(self, rng):
        tdl = TappedDelayLine(2, 2, 50e-9, 20e6, rng=rng)
        freq = tdl.frequency_response(tdl.draw(), n_fft=64)
        assert freq.shape == (64, 2, 2)

    def test_selectivity_grows_with_delay_spread(self, rng):
        """Larger RMS delay spread means more frequency variation."""
        def selectivity(spread):
            tdl = TappedDelayLine(1, 1, spread, 20e6, rng=rng)
            stds = []
            for _ in range(100):
                f = tdl.frequency_response(tdl.draw())[:, 0, 0]
                stds.append(np.std(np.abs(f)))
            return np.mean(stds)

        assert selectivity(150e-9) > selectivity(10e-9)


class TestTgnModels:
    def test_profiles_ordered_by_delay_spread(self):
        spreads = [TGN_PROFILES[m].rms_delay_spread_ns for m in "ABCDEF"]
        assert spreads == sorted(spreads)

    def test_model_a_is_flat(self, rng):
        tdl = tgn_channel("A", rng=rng)
        assert tdl.n_taps == 1

    def test_model_f_is_selective(self, rng):
        assert tgn_channel("F", rng=rng).n_taps > 5

    def test_unknown_model_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            tgn_channel("Z", rng=rng)

    def test_lowercase_accepted(self, rng):
        assert tgn_channel("d", rng=rng).n_taps >= 1
