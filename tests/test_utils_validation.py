"""Tests for repro.utils.validation and repro.utils.rng."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator
from repro.utils.validation import (
    require_in,
    require_positive,
    require_power_of_two,
)


class TestRequirePositive:
    def test_passes_positive(self):
        assert require_positive("x", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_positive("x", bad)


class TestRequireIn:
    def test_passes_member(self):
        assert require_in("x", "a", {"a", "b"}) == "a"

    def test_rejects_nonmember(self):
        with pytest.raises(ConfigurationError, match="x must be one of"):
            require_in("x", "c", {"a", "b"})


class TestRequirePowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 64, 1024])
    def test_passes(self, good):
        assert require_power_of_two("x", good) == good

    @pytest.mark.parametrize("bad", [0, 3, 48, -8])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_power_of_two("x", bad)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_reproducible(self):
        a = as_generator(42).integers(0, 100, 10)
        b = as_generator(42).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen
