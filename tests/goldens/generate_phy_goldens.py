"""Regenerate ``phy_goldens.npz`` — the bit-exactness reference for PR 5.

The archive was captured by running THIS script against the pre-refactor
scalar PHY kernels (commit bfe1190). ``tests/test_phy_goldens.py`` replays
every case against the current code and asserts exact equality, so any
vectorization that changes a single bit or float ULP fails loudly.

Run from the repo root::

    PYTHONPATH=src python tests/goldens/generate_phy_goldens.py

Only rerun it intentionally (e.g. to add cases); regenerating after a
behaviour change defeats the guard.
"""

import os

import numpy as np
from numpy.random import default_rng

from repro.channel.awgn import awgn_noise
from repro.core.link import LinkSimulator
from repro.phy import convolutional as cc
from repro.phy.dsss_ppdu import HrDsssPpdu
from repro.phy.interleaver import (
    deinterleave,
    ht_deinterleave,
    ht_interleave,
    interleave,
)
from repro.phy.mimo.ht import HtPhy
from repro.phy.modulation import Modulator
from repro.phy.ofdm import OFDM_RATES, OfdmPhy
from repro.phy.ofdm_ldpc import LdpcOfdmPhy
from repro.phy.scrambler import scrambler_sequence

OUT_PATH = os.path.join(os.path.dirname(__file__), "phy_goldens.npz")

PAYLOAD_BYTES = 40
HT_MCS_CASES = (0, 5, 8, 13)


def generate():
    out = {}
    rng = default_rng(123)

    # -- scrambler --------------------------------------------------------
    for seed in (1, 64, 0x5D, 0x7F):
        out[f"scr_{seed}"] = scrambler_sequence(300, seed=seed)

    # -- interleaver (all OFDM rates) -------------------------------------
    for r, rate in sorted(OFDM_RATES.items()):
        bits = rng.integers(0, 2, 3 * rate.n_cbps).astype(np.int8)
        out[f"il_{r}_in"] = bits
        out[f"il_{r}_out"] = interleave(bits, rate.n_cbps,
                                        rate.bits_per_subcarrier)
        soft = rng.normal(size=3 * rate.n_cbps)
        out[f"dil_{r}_in"] = soft
        out[f"dil_{r}_out"] = deinterleave(soft, rate.n_cbps,
                                           rate.bits_per_subcarrier)

    # -- HT interleaver ----------------------------------------------------
    for bpsc in (1, 2, 4, 6):
        for bw in (20, 40):
            n_cbpss = (13 if bw == 20 else 18) * (4 if bw == 20 else 6) * bpsc
            bits = rng.integers(0, 2, 2 * n_cbpss).astype(np.int8)
            out[f"htil_{bpsc}_{bw}_in"] = bits
            out[f"htil_{bpsc}_{bw}_out"] = ht_interleave(bits, bpsc, bw)
            soft = rng.normal(size=2 * n_cbpss)
            out[f"htdil_{bpsc}_{bw}_in"] = soft
            out[f"htdil_{bpsc}_{bw}_out"] = ht_deinterleave(soft, bpsc, bw)

    # -- modulation --------------------------------------------------------
    for bps in (1, 2, 4, 6):
        mod = Modulator(bps)
        bits = rng.integers(0, 2, 24 * bps).astype(np.int8)
        syms = mod.modulate(bits)
        noisy = syms + 0.12 * (rng.normal(size=syms.shape)
                               + 1j * rng.normal(size=syms.shape))
        nv_vec = 0.01 + 0.02 * rng.random(syms.shape)
        out[f"mod_{bps}_bits"] = bits
        out[f"mod_{bps}_syms"] = syms
        out[f"mod_{bps}_noisy"] = noisy
        out[f"mod_{bps}_nv"] = nv_vec
        out[f"mod_{bps}_hard"] = mod.demodulate_hard(noisy)
        out[f"mod_{bps}_soft_scalar"] = mod.demodulate_soft(noisy, 0.02)
        out[f"mod_{bps}_soft_vec"] = mod.demodulate_soft(noisy, nv_vec)

    # -- convolutional coding ---------------------------------------------
    info = rng.integers(0, 2, 500).astype(np.int8)
    out["cc_in"] = info
    out["cc_enc_term"] = cc.encode(info, terminate=True)
    out["cc_enc_unterm"] = cc.encode(info, terminate=False)
    for tag, rate_s in (("12", "1/2"), ("23", "2/3"),
                        ("34", "3/4"), ("56", "5/6")):
        coded = cc.encode_punctured(info, rate=rate_s)
        soft = cc.hard_to_soft(coded) + 0.7 * rng.normal(size=coded.size)
        out[f"cc_soft_{tag}"] = soft
        out[f"cc_dec_{tag}"] = cc.viterbi_decode(soft, 500, rate=rate_s)

    # -- OFDM PHY, all 8 rates --------------------------------------------
    payload = bytes(rng.integers(0, 256, PAYLOAD_BYTES,
                                 dtype=np.uint8).tolist())
    out["payload"] = np.frombuffer(payload, dtype=np.uint8)
    for r in sorted(OFDM_RATES):
        phy = OfdmPhy(r)
        wave = phy.transmit(payload)
        out[f"ofdm_tx_{r}"] = wave
        noise_var = float(np.mean(np.abs(wave) ** 2)) / 10.0 ** (24.0 / 10.0)
        noisy = wave + awgn_noise(wave.shape, noise_var, default_rng(50 + r))
        out[f"ofdm_noisy_{r}"] = noisy
        out[f"ofdm_nv_{r}"] = np.float64(noise_var)
        out[f"ofdm_dec_{r}"] = np.frombuffer(phy.receive(noisy, noise_var),
                                             dtype=np.uint8)

    # -- HT PHY ------------------------------------------------------------
    for mcs in HT_MCS_CASES:
        streams = mcs // 8 + 1
        phy = HtPhy(mcs=mcs, n_rx=streams, detector="mmse")
        tx = phy.transmit(payload)
        out[f"ht_tx_{mcs}"] = tx
        chan_rng = default_rng(700 + mcs)
        h = (chan_rng.normal(size=(streams, streams))
             + 1j * chan_rng.normal(size=(streams, streams))) / np.sqrt(2)
        rx = h @ np.atleast_2d(tx)
        noise_var = (float(np.mean(np.abs(tx) ** 2)) * streams
                     / 10.0 ** (30.0 / 10.0))
        rx = rx + awgn_noise(rx.shape, noise_var, chan_rng)
        out[f"ht_rx_{mcs}"] = rx
        out[f"ht_nv_{mcs}"] = np.float64(noise_var)
        psdu = phy.receive(rx, noise_var, psdu_bytes=PAYLOAD_BYTES)
        out[f"ht_dec_{mcs}"] = np.frombuffer(psdu, dtype=np.uint8)

    # -- LDPC-coded OFDM ---------------------------------------------------
    lphy = LdpcOfdmPhy(bits_per_subcarrier=2, block_length=648,
                       code_rate="1/2")
    lwave = lphy.transmit(payload)
    out["ldpcofdm_tx"] = lwave
    noise_var = float(np.mean(np.abs(lwave) ** 2)) / 10.0 ** (10.0 / 10.0)
    lnoisy = lwave + awgn_noise(lwave.shape, noise_var, default_rng(99))
    out["ldpcofdm_noisy"] = lnoisy
    out["ldpcofdm_nv"] = np.float64(noise_var)
    out["ldpcofdm_dec"] = np.frombuffer(
        lphy.receive(lnoisy, noise_var, psdu_bytes=PAYLOAD_BYTES),
        dtype=np.uint8,
    )

    # -- 802.11b PPDU framing ---------------------------------------------
    ppdu = HrDsssPpdu(11)
    out["ppdu_header_bits"] = ppdu._preamble_and_header_bits(PAYLOAD_BYTES)
    pwave = ppdu.transmit(payload)
    out["ppdu_tx"] = pwave
    out["ppdu_dec"] = np.frombuffer(ppdu.receive(pwave), dtype=np.uint8)

    # -- fixed-budget link MC results (counts must stay bit-identical) ----
    link_cases = [
        ("ofdm-54", "awgn", 17, 16.0, 12, 60),
        ("ofdm-6", "rayleigh", 3, 12.0, 15, 30),
        ("ofdm-24", "tgn-C", 5, 26.0, 10, 60),
        ("ofdm-12", "rayleigh", 77, 14.0, 30, 40),
        ("ht-8", "rayleigh", 11, 18.0, 8, 40),
        ("dsss-1", "awgn", 2, 4.0, 10, 25),
    ]
    counts = []
    for phy_name, chan, seed, snr, n_pkt, n_bytes in link_cases:
        res = LinkSimulator(phy_name, chan, rng=seed).run(
            snr, n_packets=n_pkt, payload_bytes=n_bytes)
        counts.append([res.n_packets, res.n_packet_errors, res.n_bit_errors])
    out["link_cases"] = np.array(
        [[c[0], c[1], c[2]] for c in counts], dtype=np.int64)
    out["link_case_names"] = np.array(
        [f"{p}|{c}|{s}|{snr}|{n}|{b}"
         for p, c, s, snr, n, b in link_cases])

    np.savez_compressed(OUT_PATH, **out)
    print(f"wrote {OUT_PATH} with {len(out)} arrays "
          f"({os.path.getsize(OUT_PATH)} bytes)")


if __name__ == "__main__":
    generate()
