"""Tests for the DCF simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.dcf import DcfSimulator


class TestSingleStation:
    def test_no_collisions_alone(self):
        result = DcfSimulator(1, "802.11a", 54, 1500, rng=1).run(0.2)
        assert result.collisions == 0
        assert result.successes > 0

    def test_mac_efficiency_well_below_phy_rate(self):
        """54 Mbps PHY yields ~26-31 Mbps of MAC goodput (the classic
        protocol-overhead result)."""
        result = DcfSimulator(1, "802.11a", 54, 1500, rng=1).run(0.3)
        assert 24.0 < result.throughput_mbps < 33.0

    def test_dsss_long_preamble_hurts_more(self):
        r11 = DcfSimulator(1, "802.11b", 11, 1500, rng=1).run(0.3)
        assert r11.throughput_mbps < 7.5  # of 11 Mbps


class TestContention:
    def test_collisions_grow_with_stations(self):
        p = [DcfSimulator(n, "802.11a", 54, 1500, rng=2).run(0.3)
             .collision_probability for n in (2, 10, 40)]
        assert p[0] < p[1] < p[2]

    def test_throughput_degrades_gracefully(self):
        t1 = DcfSimulator(1, "802.11a", 54, 1500, rng=3).run(0.3)
        t50 = DcfSimulator(50, "802.11a", 54, 1500, rng=3).run(0.3)
        assert t50.throughput_mbps < t1.throughput_mbps
        assert t50.throughput_mbps > 0.5 * t1.throughput_mbps

    def test_rts_cts_helps_with_many_stations(self):
        basic = DcfSimulator(60, "802.11a", 54, 1500, rng=4).run(0.3)
        rts = DcfSimulator(60, "802.11a", 54, 1500, rts_cts=True,
                           rng=4).run(0.3)
        assert rts.throughput_mbps > basic.throughput_mbps * 0.95

    def test_fairness_near_one_for_few_stations(self):
        result = DcfSimulator(4, "802.11a", 54, 1500, rng=5).run(0.5)
        assert result.jain_fairness > 0.9

    def test_delays_recorded(self):
        result = DcfSimulator(5, "802.11a", 54, 1500, rng=6).run(0.2)
        assert result.mean_delay_s > 0


class TestOfferedLoad:
    def test_light_load_carried_fully(self):
        sim = DcfSimulator(4, "802.11a", 54, 1500,
                           offered_load_mbps=1.0, rng=7)
        result = sim.run(0.5)
        # 4 stations x 1 Mbps offered = 4 Mbps; all should get through.
        assert result.throughput_mbps == pytest.approx(4.0, rel=0.25)

    def test_light_load_few_collisions(self):
        sim = DcfSimulator(4, "802.11a", 54, 1500,
                           offered_load_mbps=0.5, rng=8)
        assert sim.run(0.5).collision_probability < 0.05


class TestMultirate:
    def test_performance_anomaly(self):
        """One 6 Mbps laggard drags a 54 Mbps cell toward the slow rate —
        the classic DCF anomaly (Heusse et al.), a direct consequence of
        the rate ladders the paper charts."""
        fast_only = DcfSimulator(4, "802.11a", 54, 1500, rng=21).run(0.4)
        mixed = DcfSimulator(4, "802.11a", [54, 54, 54, 6], 1500,
                             rng=21).run(0.4)
        assert mixed.throughput_mbps < 0.6 * fast_only.throughput_mbps

    def test_anomaly_equalises_per_station_goodput(self):
        """DCF gives equal *packet* shares, so fast and slow stations end
        up with nearly equal goodput."""
        mixed = DcfSimulator(4, "802.11a", [54, 54, 54, 6], 1500,
                             rng=22).run(0.5)
        per = mixed.per_station_throughput_mbps()
        assert max(per) < 2.0 * min(p for p in per if p > 0)

    def test_scalar_rate_unchanged(self):
        scalar = DcfSimulator(3, "802.11a", 54, 1500, rng=23).run(0.2)
        vector = DcfSimulator(3, "802.11a", [54, 54, 54], 1500,
                              rng=23).run(0.2)
        assert scalar.throughput_mbps == pytest.approx(
            vector.throughput_mbps
        )

    def test_wrong_rate_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DcfSimulator(3, "802.11a", [54, 6], 1500)


class TestValidation:
    def test_zero_stations_rejected(self):
        with pytest.raises(ConfigurationError):
            DcfSimulator(0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            DcfSimulator(1).run(0.0)

    def test_result_bookkeeping(self):
        result = DcfSimulator(3, "802.11a", 54, 1000, rng=9).run(0.2)
        assert sum(result.per_station_successes) == result.successes
