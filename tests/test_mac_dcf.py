"""Tests for the DCF simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.bianchi import bianchi_tau
from repro.mac.dcf import DcfResult, DcfSimulator


class TestSingleStation:
    def test_no_collisions_alone(self):
        result = DcfSimulator(1, "802.11a", 54, 1500, rng=1).run(0.2)
        assert result.collisions == 0
        assert result.successes > 0

    def test_mac_efficiency_well_below_phy_rate(self):
        """54 Mbps PHY yields ~26-31 Mbps of MAC goodput (the classic
        protocol-overhead result)."""
        result = DcfSimulator(1, "802.11a", 54, 1500, rng=1).run(0.3)
        assert 24.0 < result.throughput_mbps < 33.0

    def test_dsss_long_preamble_hurts_more(self):
        r11 = DcfSimulator(1, "802.11b", 11, 1500, rng=1).run(0.3)
        assert r11.throughput_mbps < 7.5  # of 11 Mbps


class TestContention:
    def test_collisions_grow_with_stations(self):
        p = [DcfSimulator(n, "802.11a", 54, 1500, rng=2).run(0.3)
             .collision_probability for n in (2, 10, 40)]
        assert p[0] < p[1] < p[2]

    def test_throughput_degrades_gracefully(self):
        t1 = DcfSimulator(1, "802.11a", 54, 1500, rng=3).run(0.3)
        t50 = DcfSimulator(50, "802.11a", 54, 1500, rng=3).run(0.3)
        assert t50.throughput_mbps < t1.throughput_mbps
        assert t50.throughput_mbps > 0.5 * t1.throughput_mbps

    def test_rts_cts_helps_with_many_stations(self):
        basic = DcfSimulator(60, "802.11a", 54, 1500, rng=4).run(0.3)
        rts = DcfSimulator(60, "802.11a", 54, 1500, rts_cts=True,
                           rng=4).run(0.3)
        assert rts.throughput_mbps > basic.throughput_mbps * 0.95

    def test_fairness_near_one_for_few_stations(self):
        result = DcfSimulator(4, "802.11a", 54, 1500, rng=5).run(0.5)
        assert result.jain_fairness > 0.9

    def test_delays_recorded(self):
        result = DcfSimulator(5, "802.11a", 54, 1500, rng=6).run(0.2)
        assert result.mean_delay_s > 0


class TestOfferedLoad:
    def test_light_load_carried_fully(self):
        sim = DcfSimulator(4, "802.11a", 54, 1500,
                           offered_load_mbps=1.0, rng=7)
        result = sim.run(0.5)
        # 4 stations x 1 Mbps offered = 4 Mbps; all should get through.
        assert result.throughput_mbps == pytest.approx(4.0, rel=0.25)

    def test_light_load_few_collisions(self):
        sim = DcfSimulator(4, "802.11a", 54, 1500,
                           offered_load_mbps=0.5, rng=8)
        assert sim.run(0.5).collision_probability < 0.05


class TestMultirate:
    def test_performance_anomaly(self):
        """One 6 Mbps laggard drags a 54 Mbps cell toward the slow rate —
        the classic DCF anomaly (Heusse et al.), a direct consequence of
        the rate ladders the paper charts."""
        fast_only = DcfSimulator(4, "802.11a", 54, 1500, rng=21).run(0.4)
        mixed = DcfSimulator(4, "802.11a", [54, 54, 54, 6], 1500,
                             rng=21).run(0.4)
        assert mixed.throughput_mbps < 0.6 * fast_only.throughput_mbps

    def test_anomaly_equalises_per_station_goodput(self):
        """DCF gives equal *packet* shares, so fast and slow stations end
        up with nearly equal goodput."""
        mixed = DcfSimulator(4, "802.11a", [54, 54, 54, 6], 1500,
                             rng=22).run(0.5)
        per = mixed.per_station_throughput_mbps()
        assert max(per) < 2.0 * min(p for p in per if p > 0)

    def test_scalar_rate_unchanged(self):
        scalar = DcfSimulator(3, "802.11a", 54, 1500, rng=23).run(0.2)
        vector = DcfSimulator(3, "802.11a", [54, 54, 54], 1500,
                              rng=23).run(0.2)
        assert scalar.throughput_mbps == pytest.approx(
            vector.throughput_mbps
        )

    def test_wrong_rate_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DcfSimulator(3, "802.11a", [54, 6], 1500)


class TestCollisionProbability:
    """The simulator's p must match Bianchi's conditional collision
    probability — the analysis both compute the same quantity, so the
    two pin each other (benchmark E15)."""

    @pytest.mark.parametrize("n", [5, 20])
    def test_matches_bianchi_conditional_p(self, n):
        """Regression for the collision-probability denominator.

        A collision *event* involves >= 2 station attempts, so dividing
        colliding events by ``successes + collisions`` (the old formula)
        biased p low — by ~0.10 at n=5 and ~0.20 at n=20, far outside
        this tolerance. Counting per-station attempts lands within a
        few percent of the fixed-point analysis.
        """
        sim = DcfSimulator(n, "802.11a", 54, 1500, rng=1)
        result = sim.run(duration_s=2.0)
        _, p_analytic = bianchi_tau(n, cw_min=sim.timing.cw_min)
        assert result.collision_probability == pytest.approx(
            p_analytic, abs=0.05)

    def test_counts_all_colliding_attempts(self):
        result = DcfSimulator(30, "802.11a", 54, 1500, rng=2).run(0.5)
        # Every collision event burns at least two attempts, and with 30
        # saturated stations some involve three or more.
        assert result.collision_attempts > 2 * result.collisions

    def test_legacy_records_fall_back_to_two_per_event(self):
        """Results built without the per-attempt count (old stored
        records) reconstruct p as 2 attempts per collision event."""
        legacy = DcfResult(
            n_stations=2, duration_s=1.0, payload_bytes=1500,
            rate_mbps=54.0, successes=6, collisions=2, drops=0,
            per_station_successes=[3, 3])
        assert legacy.collision_attempts == 0
        assert legacy.collision_probability == pytest.approx(4 / 10)

    def test_attempt_denominator_used_when_present(self):
        counted = DcfResult(
            n_stations=3, duration_s=1.0, payload_bytes=1500,
            rate_mbps=54.0, successes=6, collisions=2, drops=0,
            per_station_successes=[2, 2, 2], collision_attempts=5)
        assert counted.collision_probability == pytest.approx(5 / 11)


class TestValidation:
    def test_zero_stations_rejected(self):
        with pytest.raises(ConfigurationError):
            DcfSimulator(0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            DcfSimulator(1).run(0.0)

    def test_result_bookkeeping(self):
        result = DcfSimulator(3, "802.11a", 54, 1000, rng=9).run(0.2)
        assert sum(result.per_station_successes) == result.successes
