"""Tests for repro.obs — tracing spans, counters, JSONL traces, reports."""

import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.core.mc import run_trials
from repro.errors import ConfigurationError


def span_events(events):
    return [e for e in events if e["type"] == "span"]


def counter_events(events):
    return [e for e in events if e["type"] == "counter"]


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("outer", label="a") as outer:
                with obs.span("inner") as inner:
                    pass
                with obs.span("sibling"):
                    pass
        events = {e["name"]: e for e in tracer.drain()}
        assert events["outer"]["parent_id"] is None
        assert events["inner"]["parent_id"] == events["outer"]["span_id"]
        assert events["sibling"]["parent_id"] == events["outer"]["span_id"]
        assert events["outer"]["attrs"] == {"label": "a"}
        assert outer.span_id != inner.span_id

    def test_close_order_children_before_parent(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        names = [e["name"] for e in span_events(tracer.drain())]
        assert names == ["inner", "outer"]

    def test_set_adds_attrs_and_duration_measured(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("work") as span:
                time.sleep(0.01)
                span.set(n=3, ok=True)
        (event,) = span_events(tracer.drain())
        assert event["attrs"] == {"n": 3, "ok": True}
        assert event["dur_s"] >= 0.01

    def test_exception_annotates_and_propagates(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
        (event,) = span_events(tracer.drain())
        assert event["attrs"]["error"] == "ValueError"

    def test_counters_accumulate(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            obs.counter("hits")
            obs.counter("hits", 4)
            obs.counter("misses", 2)
        assert tracer.summary()["counters"] == {"hits": 5, "misses": 2}

    def test_event_is_premeasured_span(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            obs.event("latency", 1.5, index=7)
        (event,) = span_events(tracer.drain())
        assert event["dur_s"] == 1.5
        assert event["attrs"]["index"] == 7

    def test_summary_aggregates_per_name(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            obs.event("step", 1.0)
            obs.event("step", 3.0)
        stats = tracer.summary()["spans"]["step"]
        assert stats["count"] == 2
        assert stats["total_s"] == pytest.approx(4.0)
        assert stats["max_s"] == pytest.approx(3.0)


class TestDisabledPath:
    def test_noop_span_is_shared_and_reentrant(self):
        assert not obs.enabled()
        s1 = obs.span("anything", a=1)
        s2 = obs.span("else")
        assert s1 is s2 is obs.NULL_SPAN
        with s1 as inner:
            inner.set(whatever=1)
        obs.counter("ignored")
        obs.event("ignored", 1.0)

    def test_use_tracer_restores_previous(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            assert obs.current_tracer() is tracer
            with obs.use_tracer(None):
                assert not obs.enabled()
            assert obs.current_tracer() is tracer
        assert obs.current_tracer() is None

    def test_disabled_overhead_under_5_percent(self):
        """The acceptance bound: tracing off must not slow run_trials."""
        def batch(rng, m):
            return {"hit": int(rng.integers(0, m + 1))}

        def timed_run():
            t0 = time.perf_counter()
            run_trials(batch, n_trials=20000, target="hit", rng=1,
                       batch_size=200, vectorized=True)
            return time.perf_counter() - t0

        timed_run()  # warm-up: imports, allocator, branch caches
        baseline = min(timed_run() for _ in range(3))
        with_noop = min(timed_run() for _ in range(3))
        # Both runs take the disabled path; they must be statistically
        # indistinguishable. Generous 2x-of-bound margin absorbs jitter.
        assert with_noop <= baseline * 1.10

    def test_disabled_metrics_share_the_overhead_budget(self):
        """The PR-9 metrics registry rides the same one-branch contract:
        with no registry installed, the engine's per-batch observe and
        end-of-run count/gauge calls must not slow run_trials."""
        from repro.obs import metrics

        assert metrics.current_registry() is None

        def batch(rng, m):
            return {"hit": int(rng.integers(0, m + 1))}

        def timed_run():
            t0 = time.perf_counter()
            run_trials(batch, n_trials=20000, target="hit", rng=1,
                       batch_size=200, vectorized=True)
            return time.perf_counter() - t0

        timed_run()
        baseline = min(timed_run() for _ in range(3))
        again = min(timed_run() for _ in range(3))
        assert again <= baseline * 1.10


class TestWriterAndMerge:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = obs.Tracer(writer=obs.TraceWriter(path))
        with obs.use_tracer(tracer):
            with obs.span("a", x=1):
                obs.counter("n", 2)
        events = obs.read_trace(path)
        assert {e["type"] for e in events} == {"span", "counter"}
        (span,) = span_events(events)
        assert span["name"] == "a" and span["attrs"] == {"x": 1}
        (counter,) = counter_events(events)
        assert counter["name"] == "n" and counter["value"] == 2

    def test_sanitizes_numpy_and_nonfinite(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = obs.Tracer(writer=obs.TraceWriter(path))
        with obs.use_tracer(tracer):
            with obs.span("a") as span:
                span.set(np_int=np.int64(3), np_float=np.float64(2.5),
                         bad=float("nan"), worse=float("inf"))
        (span,) = span_events(obs.read_trace(path))
        assert span["attrs"] == {"np_int": 3, "np_float": 2.5,
                                 "bad": None, "worse": None}
        # The file itself must be strict JSON (no NaN literals).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_read_trace_skips_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"type": "counter", "name": "n", "pid": 1,
                           "seq": 0, "t_wall": 0.0, "value": 1})
        path.write_text(good + "\n{\"type\": \"span\", \"na\n")
        assert len(obs.read_trace(path)) == 1

    def test_read_trace_missing_file_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            obs.read_trace(tmp_path / "absent.jsonl")

    def test_merge_combines_parts_and_orders(self, tmp_path):
        for role, pid, t in [("main", 10, 0.0), ("worker", 20, 1.0),
                             ("worker", 30, 0.5)]:
            part = obs.part_path(tmp_path, role, pid=pid)
            obs.TraceWriter(part).write([
                {"type": "counter", "name": "n", "pid": pid, "seq": 0,
                 "t_wall": t, "value": 1}])
        merged, events = obs.merge_trace_dir(tmp_path)
        assert [e["pid"] for e in events] == [10, 30, 20]
        assert os.path.basename(merged) == obs.MERGED_TRACE_FILE
        # Parts are consumed; only the merged file remains.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            obs.MERGED_TRACE_FILE]
        # Re-merging replaces rather than duplicates.
        _, again = obs.merge_trace_dir(tmp_path)
        assert len(again) == len(events)

    def test_reset_trace_dir_clears_stale_parts(self, tmp_path):
        stale = tmp_path / "worker-999.jsonl"
        stale.write_text("{}\n")
        out = obs.reset_trace_dir(tmp_path)
        assert out == str(tmp_path)
        assert not stale.exists()


class TestReport:
    def _trace(self, tmp_path):
        tracer = obs.Tracer(writer=obs.TraceWriter(
            obs.part_path(tmp_path, "main")))
        with obs.use_tracer(tracer):
            with obs.span("campaign.run", campaign="t", n_points=1,
                          workers=1):
                with obs.span("campaign.point", index=0, outcome="ok",
                              attempts=1, cached=False, exec_s=0.5):
                    obs.event("mc.run_trials", 0.5, n_trials=1000)
                obs.counter("campaign.cache.miss")
        _, events = obs.merge_trace_dir(tmp_path)
        return events

    def test_report_lines_render_points_and_counters(self, tmp_path):
        events = self._trace(tmp_path)
        text = "\n".join(obs.trace_report_lines(events, campaign="t"))
        assert "campaign.run" in text
        assert "mc.run_trials" in text
        assert "campaign.cache.miss" in text
        # The per-point table: index, outcome, and MC trial throughput.
        assert "ok" in text and "1000" in text

    def test_report_empty_trace_errors(self):
        with pytest.raises(ConfigurationError):
            obs.trace_report_lines([])

    def test_aggregate_matches_summary_shape(self, tmp_path):
        agg = obs.aggregate(self._trace(tmp_path))
        assert agg["spans"]["campaign.point"]["count"] == 1
        assert agg["counters"]["campaign.cache.miss"] == 1
        table = obs.summary_table(agg)
        assert table[0].startswith("span")
        assert any("campaign.cache.miss" in line for line in table)
