"""Tests for the LDPC-coded OFDM PHY."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.ofdm import OfdmPhy
from repro.phy.ofdm_ldpc import LdpcOfdmPhy


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(7)
    return bytes(rng.integers(0, 256, 150, dtype=np.uint8).tolist())


@pytest.fixture(scope="module")
def phy():
    return LdpcOfdmPhy(bits_per_subcarrier=2, code_rate="1/2")


class TestRoundTrip:
    def test_clean(self, phy, message):
        wave = phy.transmit(message)
        assert phy.receive(wave, 1e-10, psdu_bytes=len(message)) == message

    @pytest.mark.parametrize("bps,rate", [(1, "1/2"), (4, "3/4"),
                                          (6, "5/6")])
    def test_other_configurations(self, bps, rate, message):
        phy = LdpcOfdmPhy(bits_per_subcarrier=bps, code_rate=rate)
        wave = phy.transmit(message)
        assert phy.receive(wave, 1e-10, psdu_bytes=len(message)) == message

    def test_awgn(self, phy, message, rng):
        wave = phy.transmit(message)
        nv = 10 ** (-12 / 10)
        noisy = wave + np.sqrt(nv / 2) * (
            rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)
        )
        assert phy.receive(noisy, nv, psdu_bytes=len(message)) == message

    def test_multipath(self, phy, message, rng):
        wave = phy.transmit(message)
        taps = np.array([0.9, 0.35 * np.exp(1j), 0.2])
        rx = np.convolve(wave, taps)[: wave.size]
        nv = 1e-2
        rx = rx + np.sqrt(nv / 2) * (
            rng.normal(size=rx.size) + 1j * rng.normal(size=rx.size)
        )
        assert phy.receive(rx, nv, psdu_bytes=len(message)) == message

    def test_details_report_convergence(self, phy, message):
        wave = phy.transmit(message)
        _, details = phy.receive(wave, 1e-10, psdu_bytes=len(message),
                                 return_details=True)
        assert details["converged"]
        assert details["n_blocks"] == phy.n_blocks(len(message))


class TestBehaviour:
    def test_ldpc_at_least_matches_convolutional_at_low_snr(self, message):
        """The paper's E7 claim, at waveform level: LDPC-OFDM holds packets
        at an SNR where equal-rate convolutional OFDM starts dropping."""
        rng = np.random.default_rng(12)
        ldpc = LdpcOfdmPhy(bits_per_subcarrier=2, code_rate="1/2")
        conv = OfdmPhy(12)  # same QPSK rate-1/2, 12 Mbps
        nv = 10 ** (-5.5 / 10)
        fails = {"ldpc": 0, "conv": 0}
        for _ in range(12):
            w = ldpc.transmit(message)
            y = w + np.sqrt(nv / 2) * (rng.normal(size=w.size)
                                       + 1j * rng.normal(size=w.size))
            try:
                fails["ldpc"] += ldpc.receive(
                    y, nv, psdu_bytes=len(message)) != message
            except DemodulationError:
                fails["ldpc"] += 1
            w = conv.transmit(message)
            y = w + np.sqrt(nv / 2) * (rng.normal(size=w.size)
                                       + 1j * rng.normal(size=w.size))
            try:
                fails["conv"] += conv.receive(y, nv) != message
            except DemodulationError:
                fails["conv"] += 1
        assert fails["ldpc"] <= fails["conv"]

    def test_rate_formula(self, phy):
        # 96 coded bits/symbol * 1/2 over 4 us = 12 Mbps.
        assert phy.data_rate_mbps() == pytest.approx(12.0)

    def test_duration_grows_with_payload(self, phy):
        assert phy.frame_duration_s(1000) > phy.frame_duration_s(100)

    def test_empty_psdu_rejected(self, phy):
        with pytest.raises(ConfigurationError):
            phy.transmit(b"")

    def test_oversized_request_rejected(self, phy, message):
        wave = phy.transmit(message)
        with pytest.raises(DemodulationError):
            phy.receive(wave, 1e-10, psdu_bytes=10_000)

    def test_short_waveform_rejected(self, phy):
        with pytest.raises(DemodulationError):
            phy.receive(np.ones(100, complex), 1e-3)
