"""Tests for repro.channel.awgn."""

import numpy as np
import pytest

from repro.channel.awgn import add_awgn, awgn_noise, noise_floor_dbm
from repro.errors import ConfigurationError


class TestAwgnNoise:
    def test_variance(self, rng):
        noise = awgn_noise(100000, 0.5, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.5, rel=0.05)

    def test_circular(self, rng):
        noise = awgn_noise(100000, 1.0, rng)
        assert abs(np.mean(noise)) < 0.02
        assert np.var(noise.real) == pytest.approx(np.var(noise.imag),
                                                   rel=0.05)

    def test_shape(self, rng):
        assert awgn_noise((3, 7), 1.0, rng).shape == (3, 7)

    def test_negative_variance_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            awgn_noise(10, -1.0, rng)

    def test_zero_variance(self, rng):
        assert not awgn_noise(10, 0.0, rng).any()


class TestAddAwgn:
    def test_achieves_target_snr(self, rng):
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 50000))
        noisy, nv = add_awgn(signal, 7.0, rng)
        measured = 10 * np.log10(1.0 / np.mean(np.abs(noisy - signal) ** 2))
        assert measured == pytest.approx(7.0, abs=0.3)

    def test_returns_noise_variance(self, rng):
        signal = np.ones(1000, dtype=complex)
        _, nv = add_awgn(signal, 10.0, rng)
        assert nv == pytest.approx(0.1)

    def test_unit_power_assumption(self, rng):
        signal = 2.0 * np.ones(100, dtype=complex)
        _, nv = add_awgn(signal, 0.0, rng, measure_power=False)
        assert nv == pytest.approx(1.0)


class TestNoiseFloor:
    def test_20mhz_floor(self):
        # kTB(20 MHz) ~ -101 dBm + 7 dB NF = -94 dBm.
        assert noise_floor_dbm(20e6) == pytest.approx(-94.0, abs=0.1)

    def test_40mhz_is_3db_higher(self):
        assert noise_floor_dbm(40e6) - noise_floor_dbm(20e6) == pytest.approx(
            10 * np.log10(2.0), abs=0.01
        )

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_floor_dbm(0)
