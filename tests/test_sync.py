"""Tests for packet detection and synchronisation."""

import numpy as np
import pytest

from repro.errors import DemodulationError
from repro.phy.ofdm import OfdmPhy
from repro.phy.sync import (
    apply_cfo,
    coarse_cfo_estimate,
    correct_cfo,
    detect_packet,
    detection_metric,
    fine_cfo_estimate,
    fine_timing,
    synchronise,
)


@pytest.fixture(scope="module")
def ppdu():
    rng = np.random.default_rng(44)
    msg = bytes(rng.integers(0, 256, 80, dtype=np.uint8).tolist())
    return msg, OfdmPhy(24).transmit(msg)


def _noisy(wave, snr_db, rng, delay=0):
    padded = np.concatenate([np.zeros(delay, complex), wave])
    nv = 10 ** (-snr_db / 10)
    return padded + np.sqrt(nv / 2) * (
        rng.normal(size=padded.size) + 1j * rng.normal(size=padded.size)
    ), nv


class TestDetection:
    def test_metric_high_inside_preamble(self, ppdu):
        _, wave = ppdu
        metric = detection_metric(wave)
        assert metric[:100].mean() > 0.8

    def test_detects_with_delay_and_noise(self, ppdu, rng):
        _, wave = ppdu
        noisy, _ = _noisy(wave, 10.0, rng, delay=200)
        hit = detect_packet(noisy)
        assert hit is not None
        assert abs(hit - 200) < 40

    def test_no_false_alarm_on_noise(self, rng):
        noise = (rng.normal(size=4000) + 1j * rng.normal(size=4000)) / np.sqrt(2)
        assert detect_packet(noise, threshold=0.5) is None

    def test_short_input_rejected(self):
        with pytest.raises(DemodulationError):
            detection_metric(np.ones(10, complex))


class TestCfo:
    @pytest.mark.parametrize("cfo", [-200e3, -40e3, 55e3, 300e3])
    def test_coarse_estimate_accuracy(self, ppdu, cfo, rng):
        _, wave = ppdu
        shifted, _ = _noisy(apply_cfo(wave, cfo), 20.0, rng)
        estimate = coarse_cfo_estimate(shifted[:160])
        assert estimate == pytest.approx(cfo, abs=8e3)

    @pytest.mark.parametrize("cfo", [-50e3, 12e3, 90e3])
    def test_fine_estimate_tighter(self, ppdu, cfo, rng):
        _, wave = ppdu
        shifted, _ = _noisy(apply_cfo(wave, cfo), 20.0, rng)
        estimate = fine_cfo_estimate(shifted[160:320])
        assert estimate == pytest.approx(cfo, abs=2e3)

    def test_apply_correct_inverse(self, ppdu):
        _, wave = ppdu
        back = correct_cfo(apply_cfo(wave, 77e3), 77e3)
        assert np.allclose(back, wave, atol=1e-10)

    def test_coarse_needs_two_periods(self):
        with pytest.raises(DemodulationError):
            coarse_cfo_estimate(np.ones(20, complex))


class TestTiming:
    def test_finds_ltf_on_clean_waveform(self, ppdu):
        _, wave = ppdu
        # LTF symbol 1 starts at 160 (STF) + 32 (LTF CP) = 192.
        assert fine_timing(wave) == 192

    def test_finds_ltf_with_delay(self, ppdu, rng):
        _, wave = ppdu
        noisy, _ = _noisy(wave, 15.0, rng, delay=100)
        assert fine_timing(noisy, search_start=80) == 292


class TestFullAcquisition:
    def test_end_to_end_decode(self, ppdu, rng):
        msg, wave = ppdu
        impaired, nv = _noisy(apply_cfo(wave, 83e3), 18.0, rng, delay=150)
        aligned, info = synchronise(impaired)
        assert info["packet_start"] == 150
        assert info["total_cfo_hz"] == pytest.approx(83e3, abs=3e3)
        assert OfdmPhy(24).receive(aligned, nv) == msg

    def test_zero_impairments(self, ppdu):
        msg, wave = ppdu
        aligned, info = synchronise(wave)
        assert info["packet_start"] == 0
        assert abs(info["total_cfo_hz"]) < 2e3
        assert OfdmPhy(24).receive(aligned, 1e-9) == msg

    def test_noise_only_raises(self, rng):
        noise = (rng.normal(size=3000) + 1j * rng.normal(size=3000))
        with pytest.raises(DemodulationError):
            synchronise(noise)
