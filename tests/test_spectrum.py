"""Tests for multi-cell frequency reuse and interference."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mesh.spectrum import (
    assign_channels,
    channels_in_band,
    conflict_graph,
    deployment_capacity,
    sinr_db_at,
)
from repro.mesh.topology import grid_positions


class TestBandPlans:
    def test_24ghz_has_three_channels(self):
        assert channels_in_band("2.4GHz") == 3

    def test_5ghz_has_more(self):
        assert channels_in_band("5GHz") > channels_in_band("2.4GHz")

    def test_unknown_band_rejected(self):
        with pytest.raises(ConfigurationError):
            channels_in_band("60GHz")


class TestConflictGraph:
    def test_close_aps_conflict(self):
        graph = conflict_graph(np.array([[0.0, 0.0], [50.0, 0.0]]), 120.0)
        assert graph.has_edge(0, 1)

    def test_far_aps_do_not(self):
        graph = conflict_graph(np.array([[0.0, 0.0], [500.0, 0.0]]), 120.0)
        assert not graph.has_edge(0, 1)

    def test_bad_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            conflict_graph(np.zeros(5), 100.0)


class TestAssignment:
    def test_two_aps_two_channels_no_conflict(self):
        assignment, conflicts = assign_channels(
            np.array([[0.0, 0.0], [50.0, 0.0]]), 3
        )
        assert assignment[0] != assignment[1]
        assert conflicts == 0

    def test_dense_grid_needs_many_channels(self):
        """A 3x3 grid at 60 m spacing cannot be 3-coloured conflict-free
        with a 120 m interference range, but 8 channels suffice."""
        positions = grid_positions(3, 60.0)
        _, conflicts3 = assign_channels(positions, 3)
        _, conflicts8 = assign_channels(positions, 8)
        assert conflicts3 > 0
        assert conflicts8 <= conflicts3

    def test_channel_indices_in_range(self):
        assignment, _ = assign_channels(grid_positions(2, 40.0), 3)
        assert all(0 <= c < 3 for c in assignment)

    def test_invalid_channel_count_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_channels(np.array([[0.0, 0.0]]), 0)


class TestSinr:
    def test_no_interferer_equals_snr(self):
        positions = np.array([[0.0, 0.0], [300.0, 0.0]])
        assignment = [0, 1]  # different channels
        sinr = sinr_db_at([10.0, 0.0], 0, positions, assignment)
        from repro.analysis.linkbudget import LinkBudget
        assert sinr == pytest.approx(LinkBudget().snr_at(10.0), abs=0.2)

    def test_cochannel_interferer_hurts(self):
        positions = np.array([[0.0, 0.0], [80.0, 0.0]])
        point = [10.0, 0.0]
        clean = sinr_db_at(point, 0, positions, [0, 1])
        dirty = sinr_db_at(point, 0, positions, [0, 0])
        assert dirty < clean - 3.0

    def test_nearer_interferer_hurts_more(self):
        point = [5.0, 0.0]
        near = sinr_db_at(point, 0,
                          np.array([[0.0, 0.0], [40.0, 0.0]]), [0, 0])
        far = sinr_db_at(point, 0,
                         np.array([[0.0, 0.0], [200.0, 0.0]]), [0, 0])
        assert near < far


class TestDeploymentCapacity:
    def test_5ghz_beats_24ghz_in_dense_grid(self):
        """The paper's spectrum-opening payoff: more clean channels ->
        higher mean client rate in a dense deployment."""
        positions = grid_positions(3, 60.0)
        r24 = deployment_capacity(positions, "2.4GHz", n_clients=150,
                                  area_side_m=160.0, rng=1)
        r5 = deployment_capacity(positions, "5GHz", n_clients=150,
                                 area_side_m=160.0, rng=1)
        assert r5["mean_rate_mbps"] > r24["mean_rate_mbps"]
        assert r5["conflicts"] <= r24["conflicts"]

    def test_result_keys(self):
        out = deployment_capacity(grid_positions(2, 80.0), "2.4GHz",
                                  n_clients=50, area_side_m=100.0, rng=2)
        assert set(out) == {"mean_rate_mbps", "outage_fraction",
                            "conflicts", "n_channels"}
        assert 0.0 <= out["outage_fraction"] <= 1.0
