"""Bit-exactness goldens for the vectorized PHY kernels (PR 5).

``tests/goldens/phy_goldens.npz`` was captured by running
``tests/goldens/generate_phy_goldens.py`` against the pre-refactor scalar
kernels. Every case here replays an input from the archive through the
current (vectorized) code and asserts the output is EXACTLY equal — same
bits for integer arrays, same ULPs for floats. A vectorization that
reorders a floating-point reduction fails these tests; that is the point.
"""

import os

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.channel.awgn import awgn_noise
from repro.core.link import LinkSimulator
from repro.phy import convolutional as cc
from repro.phy.dsss_ppdu import HrDsssPpdu
from repro.phy.interleaver import (
    deinterleave,
    ht_deinterleave,
    ht_interleave,
    interleave,
)
from repro.phy.mimo.ht import HtPhy
from repro.phy.modulation import Modulator
from repro.phy.ofdm import OFDM_RATES, OfdmPhy
from repro.phy.ofdm_ldpc import LdpcOfdmPhy
from repro.phy.scrambler import scrambler_sequence

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "goldens",
                            "phy_goldens.npz")

PAYLOAD_BYTES = 40
HT_MCS_CASES = (0, 5, 8, 13)


@pytest.fixture(scope="module")
def gold():
    return np.load(GOLDENS_PATH)


def _payload(gold):
    return gold["payload"].tobytes()


class TestScramblerGoldens:
    @pytest.mark.parametrize("seed", [1, 64, 0x5D, 0x7F])
    def test_sequence(self, gold, seed):
        assert_array_equal(scrambler_sequence(300, seed=seed),
                           gold[f"scr_{seed}"])


class TestInterleaverGoldens:
    @pytest.mark.parametrize("rate", sorted(OFDM_RATES))
    def test_interleave(self, gold, rate):
        r = OFDM_RATES[rate]
        got = interleave(gold[f"il_{rate}_in"], r.n_cbps,
                         r.bits_per_subcarrier)
        assert_array_equal(got, gold[f"il_{rate}_out"])

    @pytest.mark.parametrize("rate", sorted(OFDM_RATES))
    def test_deinterleave(self, gold, rate):
        r = OFDM_RATES[rate]
        got = deinterleave(gold[f"dil_{rate}_in"], r.n_cbps,
                           r.bits_per_subcarrier)
        assert_array_equal(got, gold[f"dil_{rate}_out"])

    @pytest.mark.parametrize("bpsc", [1, 2, 4, 6])
    @pytest.mark.parametrize("bw", [20, 40])
    def test_ht_interleave(self, gold, bpsc, bw):
        got = ht_interleave(gold[f"htil_{bpsc}_{bw}_in"], bpsc, bw)
        assert_array_equal(got, gold[f"htil_{bpsc}_{bw}_out"])
        got = ht_deinterleave(gold[f"htdil_{bpsc}_{bw}_in"], bpsc, bw)
        assert_array_equal(got, gold[f"htdil_{bpsc}_{bw}_out"])


class TestModulationGoldens:
    @pytest.mark.parametrize("bps", [1, 2, 4, 6])
    def test_modulate(self, gold, bps):
        mod = Modulator(bps)
        assert_array_equal(mod.modulate(gold[f"mod_{bps}_bits"]),
                           gold[f"mod_{bps}_syms"])

    @pytest.mark.parametrize("bps", [1, 2, 4, 6])
    def test_demodulate(self, gold, bps):
        mod = Modulator(bps)
        noisy = gold[f"mod_{bps}_noisy"]
        assert_array_equal(mod.demodulate_hard(noisy),
                           gold[f"mod_{bps}_hard"])
        assert_array_equal(mod.demodulate_soft(noisy, 0.02),
                           gold[f"mod_{bps}_soft_scalar"])
        assert_array_equal(mod.demodulate_soft(noisy, gold[f"mod_{bps}_nv"]),
                           gold[f"mod_{bps}_soft_vec"])


class TestConvolutionalGoldens:
    def test_encode(self, gold):
        info = gold["cc_in"]
        assert_array_equal(cc.encode(info, terminate=True),
                           gold["cc_enc_term"])
        assert_array_equal(cc.encode(info, terminate=False),
                           gold["cc_enc_unterm"])

    @pytest.mark.parametrize("tag,rate", [("12", "1/2"), ("23", "2/3"),
                                          ("34", "3/4"), ("56", "5/6")])
    def test_viterbi(self, gold, tag, rate):
        got = cc.viterbi_decode(gold[f"cc_soft_{tag}"], 500, rate=rate)
        assert_array_equal(got, gold[f"cc_dec_{tag}"])


class TestOfdmGoldens:
    @pytest.mark.parametrize("rate", sorted(OFDM_RATES))
    def test_transmit(self, gold, rate):
        wave = OfdmPhy(rate).transmit(_payload(gold))
        assert_array_equal(wave, gold[f"ofdm_tx_{rate}"])

    @pytest.mark.parametrize("rate", sorted(OFDM_RATES))
    def test_receive(self, gold, rate):
        phy = OfdmPhy(rate)
        psdu = phy.receive(gold[f"ofdm_noisy_{rate}"],
                           float(gold[f"ofdm_nv_{rate}"]))
        assert_array_equal(np.frombuffer(psdu, dtype=np.uint8),
                           gold[f"ofdm_dec_{rate}"])


class TestHtGoldens:
    @pytest.mark.parametrize("mcs", HT_MCS_CASES)
    def test_transmit(self, gold, mcs):
        streams = mcs // 8 + 1
        phy = HtPhy(mcs=mcs, n_rx=streams, detector="mmse")
        assert_array_equal(phy.transmit(_payload(gold)),
                           gold[f"ht_tx_{mcs}"])

    @pytest.mark.parametrize("mcs", HT_MCS_CASES)
    def test_receive(self, gold, mcs):
        streams = mcs // 8 + 1
        phy = HtPhy(mcs=mcs, n_rx=streams, detector="mmse")
        psdu = phy.receive(gold[f"ht_rx_{mcs}"], float(gold[f"ht_nv_{mcs}"]),
                           psdu_bytes=PAYLOAD_BYTES)
        assert_array_equal(np.frombuffer(psdu, dtype=np.uint8),
                           gold[f"ht_dec_{mcs}"])


class TestLdpcOfdmGoldens:
    def test_transmit(self, gold):
        phy = LdpcOfdmPhy(bits_per_subcarrier=2, block_length=648,
                          code_rate="1/2")
        assert_array_equal(phy.transmit(_payload(gold)), gold["ldpcofdm_tx"])

    def test_receive(self, gold):
        phy = LdpcOfdmPhy(bits_per_subcarrier=2, block_length=648,
                          code_rate="1/2")
        psdu = phy.receive(gold["ldpcofdm_noisy"],
                           float(gold["ldpcofdm_nv"]),
                           psdu_bytes=PAYLOAD_BYTES)
        assert_array_equal(np.frombuffer(psdu, dtype=np.uint8),
                           gold["ldpcofdm_dec"])


class TestDsssPpduGoldens:
    def test_header_and_roundtrip(self, gold):
        ppdu = HrDsssPpdu(11)
        assert_array_equal(ppdu._preamble_and_header_bits(PAYLOAD_BYTES),
                           gold["ppdu_header_bits"])
        wave = ppdu.transmit(_payload(gold))
        assert_array_equal(wave, gold["ppdu_tx"])
        assert_array_equal(np.frombuffer(ppdu.receive(wave), dtype=np.uint8),
                           gold["ppdu_dec"])


class TestLinkMcGoldens:
    """Fixed-budget MC runs must stay bit-identical to the scalar era."""

    def _cases(self, gold):
        names = [str(s) for s in gold["link_case_names"]]
        for name, counts in zip(names, gold["link_cases"]):
            phy, chan, seed, snr, n_pkt, n_bytes = name.split("|")
            yield (phy, chan, int(seed), float(snr), int(n_pkt),
                   int(n_bytes), tuple(int(c) for c in counts))

    def test_fixed_budget_counts(self, gold):
        for phy, chan, seed, snr, n_pkt, n_bytes, want in self._cases(gold):
            res = LinkSimulator(phy, chan, rng=seed).run(
                snr, n_packets=n_pkt, payload_bytes=n_bytes)
            got = (res.n_packets, res.n_packet_errors, res.n_bit_errors)
            assert got == want, f"{phy}/{chan} seed {seed}: {got} != {want}"

    def test_batched_matches_scalar_path(self, gold):
        """The vectorized trial path equals the per-packet loop exactly."""
        for phy, chan in [("ofdm-54", "awgn"), ("ofdm-12", "rayleigh"),
                          ("ofdm-24", "tgn-C")]:
            fast = LinkSimulator(phy, chan, rng=31).run(
                14.0, n_packets=10, payload_bytes=50)
            slow = LinkSimulator(phy, chan, rng=31).run(
                14.0, n_packets=10, payload_bytes=50, vectorized=False)
            assert (fast.n_packet_errors, fast.n_bit_errors) == \
                   (slow.n_packet_errors, slow.n_bit_errors)


class TestBatchedWaveformEquivalence:
    """transmit_batch/receive_batch equal per-packet transmit/receive."""

    def test_ofdm_transmit_batch(self, gold):
        rng = np.random.default_rng(9)
        payloads = [bytes(rng.integers(0, 256, 30, dtype=np.uint8).tolist())
                    for _ in range(4)]
        phy = OfdmPhy(24)
        batch = phy.transmit_batch(payloads)
        for i, p in enumerate(payloads):
            assert_array_equal(batch[i], phy.transmit(p))

    def test_ofdm_receive_batch(self, gold):
        rng = np.random.default_rng(10)
        payloads = [bytes(rng.integers(0, 256, 30, dtype=np.uint8).tolist())
                    for _ in range(4)]
        phy = OfdmPhy(36)
        waves = phy.transmit_batch(payloads)
        noise_var = np.full(4, float(np.mean(np.abs(waves) ** 2))
                            / 10.0 ** (20.0 / 10.0))
        noisy = waves + awgn_noise(waves.shape, noise_var[0], rng)
        got = phy.receive_batch(noisy, noise_var)
        for i, p in enumerate(payloads):
            assert got[i] == phy.receive(noisy[i], noise_var[i])
