"""Property-based tests on the system-level invariants.

Complements test_properties.py (codec round trips) with laws on the
channel, link-budget, LDPC, CCK and routing layers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.linkbudget import LinkBudget
from repro.analysis.per import per_from_ber, per_from_snr
from repro.channel.multipath import exponential_pdp
from repro.channel.pathloss import breakpoint_path_loss_db
from repro.coop.outage import df_outage_probability, direct_outage_probability
from repro.mesh.metrics import airtime_metric_s
from repro.phy.cck import CckPhy, cck_codeword
from repro.phy.ldpc import LdpcCode


@pytest.fixture(scope="module")
def code():
    return LdpcCode.from_standard(648, "1/2")


class TestLdpcAlgebra:
    @given(seed=st.integers(0, 2 ** 31))
    @settings(max_examples=15, deadline=None)
    def test_every_encoding_is_a_codeword(self, seed):
        code = LdpcCode.from_standard(648, "1/2")
        rng = np.random.default_rng(seed)
        info = rng.integers(0, 2, code.k).astype(np.int8)
        assert code.is_codeword(code.encode(info))

    @given(seed=st.integers(0, 2 ** 31))
    @settings(max_examples=10, deadline=None)
    def test_code_is_linear(self, seed):
        code = LdpcCode.from_standard(648, "1/2")
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, code.k).astype(np.int8)
        b = rng.integers(0, 2, code.k).astype(np.int8)
        assert np.array_equal(
            code.encode(a) ^ code.encode(b), code.encode(a ^ b)
        )


class TestCckProperties:
    @given(p1=st.floats(-np.pi, np.pi), p2=st.floats(-np.pi, np.pi),
           p3=st.floats(-np.pi, np.pi), p4=st.floats(-np.pi, np.pi))
    @settings(max_examples=50)
    def test_codewords_constant_envelope(self, p1, p2, p3, p4):
        assert np.allclose(np.abs(cck_codeword(p1, p2, p3, p4)), 1.0)

    @given(seed=st.integers(0, 2 ** 31),
           rate=st.sampled_from([5.5, 11]),
           phase=st.floats(-np.pi, np.pi))
    @settings(max_examples=15, deadline=None)
    def test_round_trip_under_any_carrier_phase(self, seed, rate, phase):
        rng = np.random.default_rng(seed)
        phy = CckPhy(rate)
        bits = rng.integers(0, 2, phy.bits_per_symbol * 20).astype(np.int8)
        rotated = phy.modulate(bits) * np.exp(1j * phase)
        assert np.array_equal(phy.demodulate(rotated), bits)


class TestChannelLaws:
    @given(spread_ns=st.floats(0.0, 300.0))
    @settings(max_examples=40)
    def test_pdp_always_normalised(self, spread_ns):
        pdp = exponential_pdp(spread_ns * 1e-9, 50e-9)
        assert pdp.sum() == pytest.approx(1.0)
        assert np.all(pdp >= 0)

    @given(d1=st.floats(0.5, 400.0), d2=st.floats(0.5, 400.0))
    @settings(max_examples=40)
    def test_path_loss_monotone_in_distance(self, d1, d2):
        lo, hi = sorted((d1, d2))
        assert breakpoint_path_loss_db(lo, 5.18e9) <= (
            breakpoint_path_loss_db(hi, 5.18e9) + 1e-9
        )

    @given(snr=st.floats(-10.0, 50.0))
    @settings(max_examples=40)
    def test_budget_inversion(self, snr):
        budget = LinkBudget()
        try:
            d = budget.range_for_snr(snr)
        except Exception:
            return  # unreachable SNR is allowed to raise
        assert budget.snr_at(d) == pytest.approx(snr, abs=0.05)


class TestProbabilityLaws:
    @given(ber=st.floats(0.0, 1.0), n_bits=st.integers(1, 100000))
    @settings(max_examples=50)
    def test_per_is_probability(self, ber, n_bits):
        per = per_from_ber(ber, n_bits)
        assert 0.0 <= per <= 1.0

    @given(ber=st.floats(1e-9, 0.5), n1=st.integers(1, 1000),
           extra=st.integers(1, 1000))
    @settings(max_examples=40)
    def test_per_monotone_in_length(self, ber, n1, extra):
        assert per_from_ber(ber, n1) <= per_from_ber(ber, n1 + extra) + 1e-12

    @given(snr=st.floats(-20.0, 60.0), thr=st.floats(0.0, 35.0))
    @settings(max_examples=40)
    def test_logistic_per_bounds(self, snr, thr):
        per = per_from_snr(snr, thr)
        assert 0.0 <= per <= 1.0

    @given(snr=st.floats(8.0, 40.0))
    @settings(max_examples=40)
    def test_outage_probabilities_valid_and_ordered(self, snr):
        direct = float(direct_outage_probability(snr))
        coop = float(df_outage_probability(snr))
        assert 0.0 <= coop <= 1.0
        assert 0.0 <= direct <= 1.0

    @given(rate=st.floats(1.0, 600.0), fer=st.floats(0.0, 0.95))
    @settings(max_examples=40)
    def test_airtime_metric_positive_and_monotone(self, rate, fer):
        base = airtime_metric_s(rate)
        lossy = airtime_metric_s(rate, fer)
        assert lossy >= base > 0


class TestFrontEndLaws:
    @given(bits=st.integers(2, 12), seed=st.integers(0, 2 ** 31))
    @settings(max_examples=25)
    def test_quantisation_error_bounded_by_step(self, bits, seed):
        from repro.phy.quantization import quantize

        rng = np.random.default_rng(seed)
        wave = (rng.normal(size=256) + 1j * rng.normal(size=256))
        full_scale = 5.0 * float(np.max(np.abs(wave))) + 1e-9
        step = 2.0 * full_scale / 2 ** bits
        out = quantize(wave, bits, clip_level=full_scale)
        # No clipping: per-rail error bounded by one quantisation step.
        assert np.max(np.abs(out.real - wave.real)) <= step + 1e-12
        assert np.max(np.abs(out.imag - wave.imag)) <= step + 1e-12

    @given(backoff=st.floats(0.0, 12.0))
    @settings(max_examples=30)
    def test_rapp_never_exceeds_saturation(self, backoff):
        from repro.power.pa_nonlinear import RappPa

        pa = RappPa(saturation_amplitude=1.0)
        wave = np.exp(1j * np.linspace(0, 20, 256)) * np.linspace(0, 4, 256)
        out = pa.amplify(wave, backoff_db=backoff)
        assert np.max(np.abs(out)) <= 1.0 + 1e-9

    @given(n=st.integers(1, 32), rate=st.floats(20.0, 600.0))
    @settings(max_examples=30)
    def test_aggregation_no_free_lunch(self, n, rate):
        from repro.errors import ConfigurationError
        from repro.mac.aggregation import ampdu_efficiency

        try:
            goodput = ampdu_efficiency(rate, n, payload_bytes=1000)
        except ConfigurationError:
            return  # over the A-MPDU size cap
        assert 0 < goodput < rate
