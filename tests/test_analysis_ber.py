"""Tests for closed-form BER and their agreement with simulation."""

import numpy as np
import pytest

from repro.analysis.ber_theory import (
    ber_mqam_awgn,
    ber_psk_awgn,
    ber_rayleigh_bpsk,
    ber_rayleigh_mrc,
    diversity_order_estimate,
    q_function,
)
from repro.errors import ConfigurationError
from repro.phy.modulation import Modulator
from repro.utils.bits import random_bits


class TestQFunction:
    def test_symmetry(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.0) + q_function(-1.0) == pytest.approx(1.0)

    def test_known_point(self):
        assert q_function(3.0) == pytest.approx(1.35e-3, rel=0.01)


class TestAwgnFormulas:
    def test_bpsk_reference_point(self):
        assert ber_psk_awgn(9.6) == pytest.approx(1e-5, rel=0.05)

    def test_qpsk_equals_bpsk_per_bit(self):
        assert ber_psk_awgn(6.0, 2) == pytest.approx(ber_psk_awgn(6.0, 1))

    def test_higher_order_needs_more_ebn0(self):
        assert ber_mqam_awgn(10.0, 4) > ber_psk_awgn(10.0)
        assert ber_mqam_awgn(10.0, 6) > ber_mqam_awgn(10.0, 4)

    def test_odd_order_rejected(self):
        with pytest.raises(ConfigurationError):
            ber_mqam_awgn(10.0, 3)

    def test_matches_simulation_bpsk(self, rng):
        """Monte-Carlo BPSK BER tracks the closed form within noise."""
        ebn0_db = 6.0
        mod = Modulator(1)
        bits = random_bits(200000, rng)
        x = mod.modulate(bits)
        nv = 10 ** (-ebn0_db / 10.0)
        y = x + np.sqrt(nv / 2) * (rng.normal(size=x.size)
                                   + 1j * rng.normal(size=x.size))
        sim = (mod.demodulate_hard(y) != bits).mean()
        assert sim == pytest.approx(ber_psk_awgn(ebn0_db), rel=0.2)

    def test_matches_simulation_16qam(self, rng):
        ebn0_db = 10.0
        mod = Modulator(4)
        bits = random_bits(400000, rng)
        x = mod.modulate(bits)
        # Es = 4 Eb for a unit-power 16-QAM constellation, so
        # N0 = Es / (4 * Eb/N0) = 1 / (4 * 10^(EbN0/10)).
        nv = 10 ** (-ebn0_db / 10.0) / 4.0
        y = x + np.sqrt(nv / 2) * (rng.normal(size=x.size)
                                   + 1j * rng.normal(size=x.size))
        sim = (mod.demodulate_hard(y) != bits).mean()
        assert sim == pytest.approx(ber_mqam_awgn(ebn0_db, 4), rel=0.25)


class TestRayleighFormulas:
    def test_high_snr_asymptote(self):
        # Rayleigh BPSK ~ 1/(4 g) at high SNR.
        g_db = 30.0
        g = 10 ** (g_db / 10)
        assert ber_rayleigh_bpsk(g_db) == pytest.approx(1 / (4 * g), rel=0.05)

    def test_mrc_one_branch_equals_rayleigh(self):
        assert ber_rayleigh_mrc(15.0, 1) == pytest.approx(
            ber_rayleigh_bpsk(15.0)
        )

    def test_mrc_diversity_order(self):
        snrs = np.array([20.0, 30.0])
        for branches in (1, 2, 4):
            ber = ber_rayleigh_mrc(snrs, branches)
            order = diversity_order_estimate(snrs, ber)
            assert order == pytest.approx(branches, rel=0.1)

    def test_invalid_branches_rejected(self):
        with pytest.raises(ConfigurationError):
            ber_rayleigh_mrc(10.0, 0)

    def test_matches_simulation(self, rng):
        """Flat-Rayleigh BPSK Monte-Carlo agrees with the exact formula."""
        g_db = 10.0
        mod = Modulator(1)
        n = 200000
        bits = random_bits(n, rng)
        x = mod.modulate(bits)
        h = (rng.normal(size=n) + 1j * rng.normal(size=n)) / np.sqrt(2)
        nv = 10 ** (-g_db / 10)
        y = h * x + np.sqrt(nv / 2) * (rng.normal(size=n)
                                       + 1j * rng.normal(size=n))
        sim = (mod.demodulate_hard(y / h) != bits).mean()
        assert sim == pytest.approx(ber_rayleigh_bpsk(g_db), rel=0.1)
