"""Tests for frame aggregation and the MAC throughput ceiling."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.aggregation import (
    aggregation_study,
    ampdu_efficiency,
    single_frame_efficiency,
    throughput_ceiling_mbps,
)


class TestCeiling:
    def test_single_frame_saturates(self):
        """Doubling the PHY rate stops doubling the goodput."""
        g54 = single_frame_efficiency(54.0)
        g600 = single_frame_efficiency(600.0)
        assert g600 < 2.2 * g54  # nowhere near 600/54 = 11x

    def test_ceiling_bounds_all_rates(self):
        ceiling = throughput_ceiling_mbps()
        for rate in (54.0, 300.0, 600.0, 6000.0):
            assert single_frame_efficiency(rate) <= ceiling + 1e-9

    def test_ceiling_approached_asymptotically(self):
        ceiling = throughput_ceiling_mbps()
        assert single_frame_efficiency(1e5) == pytest.approx(ceiling,
                                                             rel=0.05)

    def test_bigger_frames_higher_ceiling(self):
        assert throughput_ceiling_mbps(2304) > throughput_ceiling_mbps(500)


class TestAmpdu:
    def test_aggregation_beats_single(self):
        assert ampdu_efficiency(300.0, 16) > single_frame_efficiency(300.0)

    def test_more_mpdus_more_goodput(self):
        assert ampdu_efficiency(300.0, 32) > ampdu_efficiency(300.0, 4)

    def test_aggregated_efficiency_scales_with_rate(self):
        """With the overhead amortised, goodput tracks the PHY rate again
        — the change that made 600 Mbps meaningful."""
        e54 = ampdu_efficiency(54.0, 32)
        e600 = ampdu_efficiency(600.0, 32)
        assert e600 / e54 > 5.0

    def test_size_cap_enforced(self):
        with pytest.raises(ConfigurationError):
            ampdu_efficiency(300.0, 64, payload_bytes=1500)

    def test_zero_mpdus_rejected(self):
        with pytest.raises(ConfigurationError):
            ampdu_efficiency(300.0, 0)


class TestStudy:
    def test_rows_and_monotonicity(self):
        rows = aggregation_study()
        assert len(rows) == 4
        single_effs = [r[4] for r in rows]
        assert single_effs == sorted(single_effs, reverse=True)
        for rate, single, agg8, agg32, _ in rows:
            assert agg32 >= agg8 >= single

    def test_600mbps_single_frame_is_dismal(self):
        rows = {r[0]: r for r in aggregation_study()}
        assert rows[600.0][4] < 0.15  # ~10% efficiency
        assert rows[600.0][3] > 400.0  # aggregation rescues it
