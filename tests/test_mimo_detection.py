"""Tests for spatial-multiplexing detectors and MRC."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.mimo.detection import (
    detect_ml,
    detect_mmse,
    detect_zero_forcing,
    maximum_ratio_combine,
)
from repro.phy.modulation import Modulator
from repro.utils.bits import random_bits


def _rayleigh(shape, rng):
    return (rng.normal(size=shape) + 1j * rng.normal(size=shape)) / np.sqrt(2)


def _streams(mod, n_streams, n_syms, rng):
    bits = random_bits(mod.bits_per_symbol * n_streams * n_syms, rng)
    return mod.modulate(bits).reshape(n_streams, n_syms), bits


class TestZeroForcing:
    def test_perfect_inversion_noiseless(self, rng):
        mod = Modulator(2)
        x, bits = _streams(mod, 2, 100, rng)
        h = _rayleigh((3, 2), rng)
        est, sinr = detect_zero_forcing(h @ x, h, noise_var=1e-12)
        assert np.allclose(est, x, atol=1e-6)
        assert np.all(sinr > 0)

    def test_underdetermined_rejected(self, rng):
        h = _rayleigh((1, 2), rng)
        with pytest.raises(ConfigurationError):
            detect_zero_forcing(np.ones((1, 4), dtype=complex), h, 0.1)

    def test_sinr_reflects_channel_conditioning(self, rng):
        good = np.eye(2, dtype=complex)
        bad = np.array([[1.0, 0.99], [0.99, 1.0]], dtype=complex)
        _, sinr_good = detect_zero_forcing(np.ones((2, 1)), good, 0.01)
        _, sinr_bad = detect_zero_forcing(np.ones((2, 1)), bad, 0.01)
        assert sinr_good.min() > sinr_bad.max()


class TestMmse:
    def test_matches_zf_at_high_snr(self, rng):
        mod = Modulator(4)
        x, _ = _streams(mod, 2, 50, rng)
        h = _rayleigh((4, 2), rng)
        y = h @ x
        est_zf, _ = detect_zero_forcing(y, h, 1e-9)
        est_mmse, _ = detect_mmse(y, h, 1e-9)
        assert np.allclose(est_zf, est_mmse, atol=1e-3)

    def test_beats_zf_at_low_snr(self, rng):
        """MMSE's raison d'etre: better decisions when noise dominates."""
        mod = Modulator(2)
        nv = 0.5
        zf_errs = mmse_errs = 0
        for _ in range(200):
            x, bits = _streams(mod, 2, 4, rng)
            h = _rayleigh((2, 2), rng)
            y = h @ x + np.sqrt(nv / 2) * (
                rng.normal(size=(2, 4)) + 1j * rng.normal(size=(2, 4))
            )
            try:
                est_zf, _ = detect_zero_forcing(y, h, nv)
                zf_errs += int((mod.demodulate_hard(est_zf.ravel())
                                != mod.demodulate_hard(x.ravel())).sum())
            except DemodulationError:
                zf_errs += bits.size
            est_mmse, _ = detect_mmse(y, h, nv)
            mmse_errs += int((mod.demodulate_hard(est_mmse.ravel())
                              != mod.demodulate_hard(x.ravel())).sum())
        assert mmse_errs <= zf_errs

    def test_unbiased_estimates(self, rng):
        """Bias correction keeps clean constellation decisions possible."""
        mod = Modulator(4)
        x, bits = _streams(mod, 2, 200, rng)
        h = _rayleigh((4, 2), rng)
        est, _ = detect_mmse(h @ x, h, 1e-6)
        assert np.array_equal(mod.demodulate_hard(est.ravel()), bits)


class TestMl:
    def test_optimal_on_clean_channel(self, rng):
        mod = Modulator(2)
        x, bits = _streams(mod, 2, 30, rng)
        h = _rayleigh((2, 2), rng)
        est = detect_ml(h @ x, h, mod.constellation)
        assert np.array_equal(mod.demodulate_hard(est.ravel()), bits)

    def test_ml_at_least_as_good_as_zf(self, rng):
        mod = Modulator(2)
        nv = 0.3
        zf_errs = ml_errs = 0
        for _ in range(100):
            x, _ = _streams(mod, 2, 4, rng)
            h = _rayleigh((2, 2), rng)
            y = h @ x + np.sqrt(nv / 2) * (
                rng.normal(size=(2, 4)) + 1j * rng.normal(size=(2, 4))
            )
            ref = mod.demodulate_hard(x.ravel())
            est_zf, _ = detect_zero_forcing(y, h, nv)
            zf_errs += int((mod.demodulate_hard(est_zf.ravel()) != ref).sum())
            est_ml = detect_ml(y, h, mod.constellation)
            ml_errs += int((mod.demodulate_hard(est_ml.ravel()) != ref).sum())
        assert ml_errs <= zf_errs

    def test_search_space_guard(self, rng):
        h = _rayleigh((4, 4), rng)
        with pytest.raises(ConfigurationError):
            detect_ml(np.ones((4, 1)), h, Modulator(6).constellation)


class TestMrc:
    def test_array_gain_equals_channel_norm(self, rng):
        h = _rayleigh(4, rng)
        y = h[:, None] * np.ones((1, 10))
        est, gain = maximum_ratio_combine(y, h)
        assert gain == pytest.approx(np.sum(np.abs(h) ** 2))
        assert np.allclose(est, 1.0)

    def test_more_branches_lower_ber(self, rng):
        mod = Modulator(1)
        nv = 0.8
        errors = {}
        for n_rx in (1, 4):
            errs = 0
            for _ in range(300):
                bits = random_bits(4, rng)
                x = mod.modulate(bits)
                h = _rayleigh(n_rx, rng)
                y = h[:, None] * x[None, :] + np.sqrt(nv / 2) * (
                    rng.normal(size=(n_rx, 4)) + 1j * rng.normal(size=(n_rx, 4))
                )
                est, _ = maximum_ratio_combine(y, h)
                errs += int((mod.demodulate_hard(est) != bits).sum())
            errors[n_rx] = errs
        assert errors[4] < errors[1] / 3

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DemodulationError):
            maximum_ratio_combine(np.ones((3, 5)), np.ones(2, dtype=complex))

    def test_zero_channel_rejected(self):
        with pytest.raises(DemodulationError):
            maximum_ratio_combine(np.ones((2, 5)), np.zeros(2, dtype=complex))
