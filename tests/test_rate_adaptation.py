"""Tests for ARF and SNR-threshold rate adaptation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mac.rate_adaptation import (
    ArfController,
    SnrRateController,
    fading_snr_trace,
    simulate_rate_adaptation,
)


class TestArf:
    def test_starts_at_lowest_rate(self):
        assert ArfController().current_rate.rate_mbps == 6.0

    def test_climbs_after_success_streak(self):
        arf = ArfController(up_after=5)
        for _ in range(5):
            arf.record(True)
        assert arf.current_rate.rate_mbps == 9.0

    def test_drops_after_failures(self):
        arf = ArfController(up_after=1, down_after=2)
        arf.record(True)  # up to 9
        assert arf.current_rate.rate_mbps == 9.0
        arf.record(False)
        arf.record(False)
        assert arf.current_rate.rate_mbps == 6.0

    def test_never_exceeds_ladder(self):
        arf = ArfController(up_after=1)
        for _ in range(100):
            arf.record(True)
        assert arf.current_rate.rate_mbps == 54.0

    def test_never_below_lowest(self):
        arf = ArfController(down_after=1)
        for _ in range(20):
            arf.record(False)
        assert arf.current_rate.rate_mbps == 6.0

    def test_invalid_streaks_rejected(self):
        with pytest.raises(ConfigurationError):
            ArfController(up_after=0)


class TestSnrController:
    def test_high_snr_picks_top_rate(self):
        ctl = SnrRateController()
        assert ctl.choose_rate(45.0).rate_mbps == 54.0

    def test_low_snr_picks_bottom(self):
        ctl = SnrRateController()
        assert ctl.choose_rate(-10.0).rate_mbps == 6.0

    def test_margin_is_conservative(self):
        tight = SnrRateController(margin_db=0.0).choose_rate(20.0)
        safe = SnrRateController(margin_db=3.0).choose_rate(20.0)
        assert safe.rate_mbps <= tight.rate_mbps


class TestTrace:
    def test_trace_statistics(self, rng):
        trace = fading_snr_trace(20.0, 5000, rng=rng)
        assert trace.shape == (5000,)
        # Rayleigh fading in dB has mean ~ -2.5 dB below the mean SNR.
        assert 15.0 < trace.mean() < 20.0

    def test_doppler_controls_correlation(self, rng):
        slow = fading_snr_trace(20.0, 2000, doppler_hz=0.5, rng=rng)
        fast = fading_snr_trace(20.0, 2000, doppler_hz=50.0, rng=rng)
        assert np.abs(np.diff(slow)).mean() < np.abs(np.diff(fast)).mean()


class TestSimulation:
    def test_snr_genie_beats_fixed_low_rate_throughput(self, rng):
        trace = fading_snr_trace(25.0, 2000, rng=rng)
        genie = simulate_rate_adaptation(SnrRateController(), trace, rng=rng)
        assert genie.throughput_mbps > 6.0  # beats always-6-Mbps ceiling
        assert genie.success_ratio > 0.8

    def test_arf_reasonably_close_to_genie(self, rng):
        trace = fading_snr_trace(25.0, 3000, doppler_hz=1.0, rng=rng)
        arf = simulate_rate_adaptation(ArfController(), trace,
                                       rng=np.random.default_rng(1))
        genie = simulate_rate_adaptation(SnrRateController(), trace,
                                         rng=np.random.default_rng(1))
        assert arf.throughput_mbps > 0.3 * genie.throughput_mbps
        assert arf.throughput_mbps <= genie.throughput_mbps * 1.1

    def test_arf_tracks_channel_quality(self, rng):
        good = simulate_rate_adaptation(
            ArfController(), np.full(2000, 40.0), rng=rng
        )
        bad = simulate_rate_adaptation(
            ArfController(), np.full(2000, 8.0), rng=rng
        )
        assert good.mean_rate_mbps > bad.mean_rate_mbps
        assert good.throughput_mbps > bad.throughput_mbps

    def test_switch_counting(self, rng):
        result = simulate_rate_adaptation(
            SnrRateController(), np.array([40.0, 40.0, 0.0, 40.0]), rng=rng
        )
        assert result.rate_switches == 2

    def test_empty_trace_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_rate_adaptation(ArfController(), np.array([]), rng=rng)
