"""Tests for Alamouti STBC."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.mimo.stbc import (
    alamouti_decode,
    alamouti_encode,
    alamouti_post_snr,
)
from repro.phy.modulation import Modulator
from repro.utils.bits import random_bits


def _rayleigh(shape, rng):
    return (rng.normal(size=shape) + 1j * rng.normal(size=shape)) / np.sqrt(2)


class TestEncode:
    def test_shape(self, rng):
        syms = Modulator(2).modulate(random_bits(40, rng))
        tx = alamouti_encode(syms)
        assert tx.shape == (2, 20)

    def test_total_power_preserved(self, rng):
        syms = Modulator(2).modulate(random_bits(400, rng))
        tx = alamouti_encode(syms)
        total = np.sum(np.abs(tx) ** 2)
        assert total == pytest.approx(np.sum(np.abs(syms) ** 2), rel=1e-9)

    def test_orthogonality_of_block(self, rng):
        """Each 2x2 Alamouti block has orthogonal columns."""
        syms = Modulator(2).modulate(random_bits(4, rng))
        tx = alamouti_encode(syms) * np.sqrt(2)
        block = tx[:, :2]
        inner = np.vdot(block[:, 0], block[:, 1])
        assert abs(inner) < 1e-12

    def test_odd_length_rejected(self):
        with pytest.raises(ConfigurationError):
            alamouti_encode(np.ones(3, dtype=complex))


class TestDecode:
    @pytest.mark.parametrize("n_rx", [1, 2, 4])
    def test_clean_round_trip(self, n_rx, rng):
        mod = Modulator(2)
        bits = random_bits(200, rng)
        tx = alamouti_encode(mod.modulate(bits))
        h = _rayleigh((n_rx, 2), rng)
        est, gain = alamouti_decode(h @ tx, h)
        assert np.array_equal(mod.demodulate_hard(est), bits)
        assert gain > 0

    def test_diversity_gain_beats_siso(self, rng):
        """2x2 Alamouti BER << 1x1 BER at the same SNR in fading."""
        mod = Modulator(1)
        snr = 10 ** (8 / 10)
        nv = 1.0 / snr
        siso_errs = stbc_errs = 0
        n_blocks = 400
        for _ in range(n_blocks):
            bits = random_bits(2, rng)
            x = mod.modulate(bits)
            # SISO
            h0 = _rayleigh((1, 1), rng)[0, 0]
            y0 = h0 * x + np.sqrt(nv / 2) * (
                rng.normal(size=2) + 1j * rng.normal(size=2)
            )
            siso_errs += int(
                (mod.demodulate_hard(y0 / h0) != bits).sum()
            )
            # Alamouti 2x2
            tx = alamouti_encode(x)
            h = _rayleigh((2, 2), rng)
            y = h @ tx + np.sqrt(nv / 2) * (
                rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
            )
            est, _ = alamouti_decode(y, h)
            stbc_errs += int((mod.demodulate_hard(est) != bits).sum())
        assert stbc_errs < siso_errs / 2

    def test_post_snr_formula(self, rng):
        h = _rayleigh((2, 2), rng)
        assert alamouti_post_snr(h, 10.0) == pytest.approx(
            10.0 * np.sum(np.abs(h) ** 2) / 2.0
        )

    def test_mismatched_rows_rejected(self, rng):
        h = _rayleigh((2, 2), rng)
        with pytest.raises(DemodulationError):
            alamouti_decode(np.ones((3, 4), dtype=complex), h)

    def test_odd_periods_rejected(self, rng):
        h = _rayleigh((1, 2), rng)
        with pytest.raises(DemodulationError):
            alamouti_decode(np.ones((1, 3), dtype=complex), h)

    def test_zero_channel_rejected(self):
        with pytest.raises(DemodulationError):
            alamouti_decode(np.ones((1, 2), dtype=complex),
                            np.zeros((1, 2), dtype=complex))
