"""Tests for PER models, range helpers, capacity helpers and trends."""

import numpy as np
import pytest

from repro.analysis.capacity import shannon_capacity_bps, snr_required_db
from repro.analysis.per import per_from_ber, per_from_snr, throughput_mbps
from repro.analysis.range import (
    range_ratio_from_gain_db,
    rate_vs_distance,
)
from repro.analysis.trends import (
    fit_exponential_trend,
    predict_next_generation,
)
from repro.errors import ConfigurationError
from repro.standards.registry import get_standard


class TestPer:
    def test_zero_ber_zero_per(self):
        assert per_from_ber(0.0, 8000) == 0.0

    def test_small_ber_approximation(self):
        # PER ~ n * BER for tiny BER.
        assert per_from_ber(1e-8, 1000) == pytest.approx(1e-5, rel=0.01)

    def test_high_ber_saturates(self):
        assert per_from_ber(0.5, 10000) == pytest.approx(1.0)

    def test_invalid_ber_rejected(self):
        with pytest.raises(ConfigurationError):
            per_from_ber(1.5, 100)

    def test_logistic_half_at_threshold(self):
        assert per_from_snr(20.0, 20.0) == pytest.approx(0.5)

    def test_logistic_limits(self):
        assert per_from_snr(40.0, 20.0) < 0.01
        assert per_from_snr(0.0, 20.0) > 0.99

    def test_throughput_discounting(self):
        assert throughput_mbps(54.0, 0.5) == pytest.approx(27.0)
        assert throughput_mbps(54.0, 0.0, overhead_fraction=0.5) == (
            pytest.approx(27.0)
        )


class TestShannon:
    def test_snr_for_15bps_hz_is_about_45db(self):
        """The number behind 'SISO had hit its ceiling'."""
        assert snr_required_db(15.0) == pytest.approx(45.0, abs=0.5)

    def test_capacity_at_0db(self):
        assert shannon_capacity_bps(1e6, 0.0) == pytest.approx(1e6)

    def test_roundtrip(self):
        eta = 4.2
        snr = snr_required_db(eta)
        assert shannon_capacity_bps(1.0, snr) == pytest.approx(eta)


class TestRangeHelpers:
    def test_gain_to_range_ratio(self):
        # 3.5 exponent: 35 dB per decade of distance.
        assert range_ratio_from_gain_db(35.0) == pytest.approx(10.0)
        assert range_ratio_from_gain_db(0.0) == pytest.approx(1.0)

    def test_rate_vs_distance_monotone(self):
        rates = rate_vs_distance(get_standard("802.11a"),
                                 [5.0, 20.0, 40.0, 80.0, 200.0])
        assert np.all(np.diff(rates) <= 0)

    def test_out_of_range_is_zero(self):
        rates = rate_vs_distance(get_standard("802.11a"), [5000.0])
        assert rates[0] == 0.0


class TestTrends:
    def test_recovers_exact_geometric(self):
        values = 0.1 * 5.0 ** np.arange(4)
        ratio, prefactor = fit_exponential_trend(np.arange(4), values)
        assert ratio == pytest.approx(5.0)
        assert prefactor == pytest.approx(0.1)

    def test_paper_series_fivefold(self):
        effs = [0.1, 0.55, 2.7, 15.0]
        ratio, _ = fit_exponential_trend(range(4), effs)
        assert 4.5 < ratio < 6.0

    def test_prediction_extends_series(self):
        effs = [0.1, 0.5, 2.5, 12.5]
        assert predict_next_generation(effs) == pytest.approx(62.5, rel=0.05)

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_exponential_trend([0], [1.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_exponential_trend([0, 1], [1.0, 0.0])
