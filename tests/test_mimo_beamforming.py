"""Tests for SVD beamforming and water filling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.mimo.beamforming import (
    beamformed_capacity,
    beamforming_gain_db,
    svd_beamformer,
    transmit_power_control_db,
    water_filling,
)


def _rayleigh(shape, rng):
    return (rng.normal(size=shape) + 1j * rng.normal(size=shape)) / np.sqrt(2)


class TestSvd:
    def test_diagonalises_channel(self, rng):
        h = _rayleigh((3, 3), rng)
        bf = svd_beamformer(h)
        eff = bf["combiner"] @ h @ bf["precoder"]
        assert np.allclose(eff, np.diag(bf["gains"]), atol=1e-10)

    def test_gains_sorted_descending(self, rng):
        gains = svd_beamformer(_rayleigh((4, 4), rng))["gains"]
        assert np.all(np.diff(gains) <= 1e-12)

    def test_precoder_unitary_columns(self, rng):
        v = svd_beamformer(_rayleigh((2, 2), rng))["precoder"]
        assert np.allclose(v.conj().T @ v, np.eye(2), atol=1e-10)

    def test_beamforming_gain_positive_on_average(self, rng):
        """Dominant eigen-beam beats an average SISO link (array gain)."""
        gains = [beamforming_gain_db(_rayleigh((2, 2), rng))
                 for _ in range(200)]
        assert np.mean(gains) > 2.0


class TestWaterFilling:
    def test_power_conserved(self):
        p = water_filling(np.array([1.5, 1.0, 0.3]), total_power=2.0)
        assert p.sum() == pytest.approx(2.0)
        assert np.all(p >= 0)

    def test_strong_channel_gets_more(self):
        p = water_filling(np.array([2.0, 0.5]), total_power=1.0)
        assert p[0] > p[1]

    def test_weak_channel_shut_off(self):
        p = water_filling(np.array([2.0, 0.01]), total_power=0.5)
        assert p[1] == 0.0

    def test_equal_gains_equal_power(self):
        p = water_filling(np.array([1.0, 1.0]), total_power=3.0)
        assert p[0] == pytest.approx(p[1])

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ConfigurationError):
            water_filling(np.array([1.0]), total_power=0.0)

    def test_unsorted_input_handled(self):
        p = water_filling(np.array([0.3, 1.5, 1.0]), total_power=2.0)
        assert p[1] == p.max()


class TestBeamformedCapacity:
    def test_waterfill_at_least_equal_power(self, rng):
        h = _rayleigh((3, 3), rng)
        assert beamformed_capacity(h, 5.0, waterfill=True) >= (
            beamformed_capacity(h, 5.0, waterfill=False) - 1e-9
        )

    def test_monotone_in_snr(self, rng):
        h = _rayleigh((2, 2), rng)
        caps = [beamformed_capacity(h, s) for s in (0.1, 1.0, 10.0, 100.0)]
        assert caps == sorted(caps)


class TestPowerControl:
    def test_good_channel_needs_less_power(self, rng):
        strong = 3.0 * np.eye(2, dtype=complex)
        weak = 0.3 * np.eye(2, dtype=complex)
        assert transmit_power_control_db(strong, 10.0) < (
            transmit_power_control_db(weak, 10.0)
        )

    def test_zero_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            transmit_power_control_db(np.zeros((2, 2)), 10.0)

    def test_unit_channel_reference(self):
        h = np.eye(1, dtype=complex)
        # sigma_max = 1: required power equals target SNR.
        assert transmit_power_control_db(h, 10.0) == pytest.approx(10.0)
