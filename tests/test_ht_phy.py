"""Tests for the HT (802.11n) MIMO-OFDM transceiver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.mimo.beamforming import svd_beamformer
from repro.phy.mimo.ht import HtPhy, N_LTF, P_HTLTF


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(321)
    return bytes(rng.integers(0, 256, 150, dtype=np.uint8).tolist())


def _multipath(tx, n_rx, n_tx, rng, n_taps=3):
    taps = (rng.normal(size=(n_rx, n_tx, n_taps))
            + 1j * rng.normal(size=(n_rx, n_tx, n_taps)))
    taps /= np.sqrt(2 * n_taps)
    y = np.zeros((n_rx, tx.shape[1]), dtype=complex)
    for r in range(n_rx):
        for t in range(n_tx):
            y[r] += np.convolve(tx[t], taps[r, t])[: tx.shape[1]]
    return y


class TestConfiguration:
    def test_p_matrix_rows_orthogonal(self):
        assert np.allclose(P_HTLTF @ P_HTLTF.T, 4 * np.eye(4))

    def test_three_streams_use_four_ltfs(self):
        assert N_LTF[3] == 4

    def test_invalid_mcs_rejected(self):
        with pytest.raises(ConfigurationError):
            HtPhy(mcs=32)

    def test_insufficient_rx_rejected(self):
        with pytest.raises(ConfigurationError):
            HtPhy(mcs=8, n_rx=1)  # 2 streams, 1 antenna, linear RX

    def test_rate_formula_matches_mcs_table(self):
        phy = HtPhy(mcs=15, bandwidth_mhz=20, n_rx=2)
        assert phy.data_rate_mbps() == pytest.approx(130.0)
        assert phy.data_rate_mbps("short") == pytest.approx(144.4, abs=0.1)

    def test_600mbps_headline(self):
        phy = HtPhy(mcs=31, bandwidth_mhz=40, n_rx=4)
        assert phy.data_rate_mbps("short") == pytest.approx(600.0)


class TestRoundTrip:
    @pytest.mark.parametrize("mcs,n_rx", [(0, 1), (5, 1), (8, 2), (15, 2)])
    def test_clean_20mhz(self, mcs, n_rx, message):
        phy = HtPhy(mcs=mcs, n_rx=n_rx)
        tx = phy.transmit(message)
        # Identity channel: route stream k to antenna k.
        out = phy.receive(tx, 1e-10, psdu_bytes=len(message))
        assert out == message

    def test_clean_40mhz(self, message):
        phy = HtPhy(mcs=11, bandwidth_mhz=40, n_rx=2)
        out = phy.receive(phy.transmit(message), 1e-10,
                          psdu_bytes=len(message))
        assert out == message

    @pytest.mark.parametrize("mcs,n_rx", [(8, 2), (16, 3)])
    def test_multipath_mimo(self, mcs, n_rx, message, rng):
        phy = HtPhy(mcs=mcs, n_rx=n_rx)
        tx = phy.transmit(message)
        y = _multipath(tx, n_rx, phy.n_tx, rng)
        nv = 1e-3
        y = y + np.sqrt(nv / 2) * (rng.normal(size=y.shape)
                                   + 1j * rng.normal(size=y.shape))
        assert phy.receive(y, nv, psdu_bytes=len(message)) == message

    def test_extra_rx_antennas_help(self, message, rng):
        """Receive diversity: 2 streams on 4 antennas beats 2-on-2 at low
        SNR."""
        failures = {}
        for n_rx in (2, 4):
            phy = HtPhy(mcs=12, n_rx=n_rx)
            fails = 0
            for trial in range(8):
                local = np.random.default_rng(100 + trial)
                tx = phy.transmit(message)
                y = _multipath(tx, n_rx, 2, local, n_taps=1)
                nv = 10 ** (-14 / 10)
                y = y + np.sqrt(nv / 2) * (
                    local.normal(size=y.shape) + 1j * local.normal(size=y.shape)
                )
                try:
                    fails += phy.receive(y, nv, psdu_bytes=len(message)) != message
                except DemodulationError:
                    fails += 1
            failures[n_rx] = fails
        assert failures[4] <= failures[2]

    def test_detector_zf_roundtrip(self, message, rng):
        phy = HtPhy(mcs=8, n_rx=2, detector="zf")
        tx = phy.transmit(message)
        y = _multipath(tx, 2, 2, rng)
        assert phy.receive(y, 1e-9, psdu_bytes=len(message)) == message

    def test_detector_ml_roundtrip(self, message, rng):
        phy = HtPhy(mcs=8, n_rx=2, detector="ml")
        tx = phy.transmit(message)
        y = _multipath(tx, 2, 2, rng)
        assert phy.receive(y, 1e-9, psdu_bytes=len(message)) == message


class TestBeamforming:
    def test_svd_precoding_roundtrip(self, message, rng):
        """Per-subcarrier SVD precoding passes transparently through the
        effective-channel estimation."""
        phy = HtPhy(mcs=8, n_rx=2)
        h = (rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))) / np.sqrt(2)
        bf = svd_beamformer(h)
        precoders = np.tile(bf["precoder"], (phy.n_data_sc, 1, 1))
        tx = phy.transmit(message, precoders=precoders)
        y = h @ tx
        nv = 1e-6
        y = y + np.sqrt(nv / 2) * (rng.normal(size=y.shape)
                                   + 1j * rng.normal(size=y.shape))
        assert phy.receive(y, nv, psdu_bytes=len(message)) == message


class TestChannelEstimation:
    @pytest.mark.parametrize("mcs,n_rx", [(0, 1), (8, 2), (24, 4)])
    def test_estimates_known_flat_channel(self, mcs, n_rx, rng, message):
        phy = HtPhy(mcs=mcs, n_rx=n_rx)
        n_tx = phy.n_tx
        h = (rng.normal(size=(n_rx, n_tx))
             + 1j * rng.normal(size=(n_rx, n_tx))) / np.sqrt(2)
        tx = phy.transmit(message)
        y = h @ tx
        ltf = y[:, : N_LTF[phy.n_ss] * phy.symbol_samples]
        est = phy.estimate_channel(ltf)
        # Every used subcarrier sees the same flat channel.
        assert np.allclose(est[0], h, atol=1e-8)
        assert np.allclose(est[est.shape[0] // 2], h, atol=1e-8)


class TestSizing:
    def test_waveform_length_matches_n_samples(self, message):
        phy = HtPhy(mcs=8, n_rx=2)
        assert phy.transmit(message).shape == (
            2, phy.n_samples(len(message))
        )

    def test_frame_duration_includes_preamble(self):
        phy = HtPhy(mcs=0)
        assert phy.frame_duration_s(100) > phy.n_symbols(100) * 4e-6

    def test_psdu_too_long_rejected(self, message):
        phy = HtPhy(mcs=0)
        tx = phy.transmit(message)
        with pytest.raises(DemodulationError):
            phy.receive(tx, 1e-10, psdu_bytes=10 * len(message))
