"""Resume-after-kill: interrupted campaigns finish bit-identical.

The contract under test (ISSUE 7 acceptance): kill a campaign at any
point — torn JSONL tail, lost sqlite WAL, SIGKILL of the whole process
tree — and ``repro campaign resume`` completes the grid with records
whose stable fields are byte-identical to a run that was never
interrupted. Per-point seed substreams carry the whole burden: a
resumed point re-draws exactly what it would have drawn the first time.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (CampaignSpec, ResultsStore, make_store,
                            resume_campaign, run_campaign)
from repro.campaign.store import RECORDS_FILE
from repro.campaign.store_sqlite import DB_FILE, SqliteResultsStore

#: Fields legitimately different between an interrupted+resumed run and
#: a clean one: which pid ran the point, how long it took, and whether
#: this run served it from the store.
VOLATILE_FIELDS = ("wall_time_s", "worker", "cached")

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def stable(record):
    """A record minus per-run bookkeeping (pid, timing, cache marker)."""
    return {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}


def stable_records(result_or_records):
    records = getattr(result_or_records, "records", result_or_records)
    return [stable(r) for r in records]


def link_spec(n=8, name="resume", n_packets=4, payload_bytes=25,
              **overrides):
    fields = dict(
        name=name, kind="link",
        factors={"snr_db": [float(i) for i in range(n)]},
        fixed={"phy": "dsss-1", "channel": "awgn",
               "n_packets": n_packets, "payload_bytes": payload_bytes},
        base_seed=41,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestJsonlResume:
    def test_torn_tail_reruns_only_missing_points(self, tmp_path):
        """Truncating records.jsonl mid-line (a kill mid-append on a
        filesystem without atomic O_APPEND semantics) costs exactly the
        torn point and everything after it — nothing else re-runs, and
        the completed grid matches an undisturbed one."""
        spec = link_spec(name="torn")
        clean = run_campaign(spec, store=ResultsStore(tmp_path / "c"))
        store = ResultsStore(tmp_path / "r")
        run_campaign(spec, store=store)

        path = os.path.join(store.campaign_dir("torn"), RECORDS_FILE)
        lines = open(path, "rb").read().splitlines(keepends=True)
        assert len(lines) == 8
        with open(path, "wb") as fh:
            fh.writelines(lines[:5])
            fh.write(lines[5][: len(lines[5]) // 2])  # torn mid-record

        resumed = resume_campaign("torn", store)
        assert resumed.n_cached == 5
        assert resumed.n_executed == 3  # the torn point + the 2 lost
        assert stable_records(resumed) == stable_records(clean)
        # The store itself healed: a fresh load sees the full grid.
        assert store.count("torn") == 8

    def test_resume_event_reports_progress(self, tmp_path):
        from repro import obs

        store = ResultsStore(tmp_path)
        spec = link_spec(n=4, name="ev")
        run_campaign(spec, store=store)
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            resume_campaign("ev", store)
        events = [e for e in tracer.drain()
                  if e.get("name") == "campaign.resume"]
        assert len(events) == 1
        assert events[0]["attrs"]["n_complete"] == 4
        assert events[0]["attrs"]["n_todo"] == 0


class TestSqliteResume:
    def test_lost_wal_reruns_and_matches(self, tmp_path):
        """Crash-sim for the sqlite backend: die mid-campaign without
        closing the connection, then lose the WAL (the un-checkpointed
        commits a crashed host can drop). Resume must re-run whatever
        the store no longer holds and still finish bit-identical."""
        spec = link_spec(name="wal")
        clean = run_campaign(spec, store=ResultsStore(tmp_path / "c"))

        store = SqliteResultsStore(tmp_path / "s")
        real_append = store.append
        appended = []

        def dying_append(name, record):
            if len(appended) >= 4:
                raise RuntimeError("simulated crash mid-append")
            appended.append(record["key"])
            real_append(name, record)

        store.append = dying_append
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_campaign(spec, store=store)
        # The "host" dies: the connection is never closed (so the WAL
        # never checkpoints into the main file), and the rebooted host
        # comes back without the WAL — modelled by copying only the
        # main database file to a fresh store root.
        old_dir = os.path.join(os.fspath(tmp_path / "s"), "wal")
        new_dir = os.path.join(os.fspath(tmp_path / "s2"), "wal")
        os.makedirs(new_dir)
        for fname in (DB_FILE, "spec.json"):
            with open(os.path.join(old_dir, fname), "rb") as src, \
                    open(os.path.join(new_dir, fname), "wb") as dst:
                dst.write(src.read())

        fresh = SqliteResultsStore(tmp_path / "s2")
        resumed = resume_campaign("wal", fresh)
        assert resumed.n_cached + resumed.n_executed == 8
        assert resumed.n_executed >= 4  # at least the never-appended
        assert stable_records(resumed) == stable_records(clean)
        assert fresh.count("wal") == 8
        fresh.close()


class TestSigkillResume:
    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_sigkill_midrun_then_resume_bit_identical(self, tmp_path,
                                                      backend):
        """SIGKILL a real ``repro campaign run`` subprocess once the
        store holds at least a third of the grid, then resume in-process
        against the survivors. The finished record set must match a
        never-interrupted run on every stable field."""
        spec = link_spec(n=12, name="killed", n_packets=400,
                         payload_bytes=100)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        results = tmp_path / "r"

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH",
                                                           "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             str(spec_path), "--results", str(results),
             "--store", backend, "--workers", "2"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            store = make_store(results, backend)
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it
                try:
                    if store.count("killed") >= 4:
                        break
                except Exception:
                    pass  # store not created yet
                time.sleep(0.02)
            store.close()
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        clean = run_campaign(spec, store=ResultsStore(tmp_path / "c"))
        fresh = make_store(results, backend)
        resumed = resume_campaign("killed", fresh, workers=2)
        assert resumed.n_cached + resumed.n_executed == 12
        assert resumed.n_cached >= 1  # the kill landed after progress
        assert stable_records(resumed) == stable_records(clean)
        assert fresh.count("killed") == 12
        fresh.close()


class TestResumeTraceAppend:
    def test_resumed_run_appends_to_the_campaign_trace(self, tmp_path):
        """A traced resume extends the interrupted run's trace instead
        of replacing it: the merged trace.jsonl ends up holding both
        runs' campaign.run spans plus the resume marker event."""
        from repro import obs

        spec = link_spec(n=6, name="tracer")
        store = ResultsStore(tmp_path)
        run_campaign(spec, store=store, trace=True)

        path = os.path.join(store.campaign_dir("tracer"), RECORDS_FILE)
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as fh:
            fh.writelines(lines[:4])

        resumed = resume_campaign("tracer", store, trace=True)
        assert resumed.n_executed == 2

        events = obs.read_trace(store.trace_path("tracer"))
        runs = [e for e in events if e.get("type") == "span"
                and e.get("name") == "campaign.run"]
        assert len(runs) == 2, "resume replaced the first run's trace"
        markers = [e for e in events if e.get("name") == "campaign.resume"]
        assert len(markers) == 1
        # Both runs' point executions are in the one timeline.
        points = [e for e in events if e.get("type") == "span"
                  and e.get("name") == "campaign.execute"]
        assert len(points) == 6 + 2

    def test_stale_part_files_survive_the_resume_merge(self, tmp_path):
        """A SIGKILL can land before the parts merge: the resumed run
        must fold the orphaned part files in, not delete them."""
        from repro import obs

        spec = link_spec(n=4, name="parts")
        store = ResultsStore(tmp_path)
        run_campaign(spec, store=store, trace=True)

        # Un-merge: put the first run's events back as an orphan part,
        # as if the kill hit between the last record and the merge.
        trace_dir = store.trace_dir("parts")
        merged = store.trace_path("parts")
        os.rename(merged, os.path.join(trace_dir, "main-99999.jsonl"))

        path = os.path.join(store.campaign_dir("parts"), RECORDS_FILE)
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as fh:
            fh.writelines(lines[:3])

        resume_campaign("parts", store, trace=True)
        events = obs.read_trace(store.trace_path("parts"))
        runs = [e for e in events if e.get("type") == "span"
                and e.get("name") == "campaign.run"]
        assert len(runs) == 2
        assert not [p for p in os.listdir(trace_dir)
                    if p != "trace.jsonl"], "parts left unmerged"


class TestCliResume:
    def test_resume_command_completes_the_grid(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.cli import main

        # An ambient REPRO_STORE (the CI matrix exports one) would beat
        # store detection — these tests exercise detection itself.
        monkeypatch.delenv("REPRO_STORE", raising=False)
        spec = link_spec(n=4, name="cli")
        store = ResultsStore(tmp_path)
        run_campaign(spec, store=store)
        path = os.path.join(store.campaign_dir("cli"), RECORDS_FILE)
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as fh:
            fh.writelines(lines[:2])

        assert main(["campaign", "resume", "cli",
                     "--results", str(tmp_path)]) == 0
        assert store.count("cli") == 4
        assert "cli" in capsys.readouterr().out

    def test_resume_detects_sqlite_store_without_flag(self, tmp_path,
                                                      monkeypatch):
        """``campaign resume NAME`` with no ``--store`` lands on the
        backend that actually holds the records."""
        from repro.cli import main

        monkeypatch.delenv("REPRO_STORE", raising=False)
        spec = link_spec(n=4, name="auto")
        store = SqliteResultsStore(tmp_path)
        run_campaign(spec, store=store)
        store.close()
        assert main(["campaign", "resume", "auto",
                     "--results", str(tmp_path)]) == 0
        fresh = SqliteResultsStore(tmp_path)
        assert fresh.count("auto") == 4
        fresh.close()
