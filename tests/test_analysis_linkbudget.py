"""Tests for the link budget."""

import pytest

from repro.analysis.linkbudget import LinkBudget
from repro.errors import ConfigurationError, LinkBudgetError
from repro.standards.registry import get_standard


class TestSnrAt:
    def test_monotone_decreasing(self):
        budget = LinkBudget()
        assert budget.snr_at(5.0) > budget.snr_at(50.0) > budget.snr_at(200.0)

    def test_tx_power_shifts_snr(self):
        low = LinkBudget(tx_power_dbm=10.0)
        high = LinkBudget(tx_power_dbm=20.0)
        assert high.snr_at(30.0) - low.snr_at(30.0) == pytest.approx(10.0)

    def test_fade_margin_subtracts(self):
        base = LinkBudget()
        margined = LinkBudget(fade_margin_db=10.0)
        assert base.snr_at(20.0) - margined.snr_at(20.0) == pytest.approx(10.0)


class TestRangeForSnr:
    def test_inverts_snr_at(self):
        budget = LinkBudget()
        for snr in (5.0, 15.0, 25.0):
            d = budget.range_for_snr(snr)
            assert budget.snr_at(d) == pytest.approx(snr, abs=0.01)

    def test_lower_requirement_longer_range(self):
        budget = LinkBudget()
        assert budget.range_for_snr(5.0) > budget.range_for_snr(25.0)

    def test_free_space_region(self):
        """Very high required SNR pins the range inside the breakpoint."""
        budget = LinkBudget(breakpoint_m=5.0)
        d = budget.range_for_snr(budget.snr_at(2.0))
        assert d == pytest.approx(2.0, rel=0.01)

    def test_unreachable_raises(self):
        with pytest.raises(LinkBudgetError):
            LinkBudget(tx_power_dbm=0.0).range_for_snr(200.0)

    def test_gain_extends_range_at_35db_decade(self):
        """+10.5 dB of link gain = 2x range at exponent 3.5."""
        base = LinkBudget()
        boosted = LinkBudget(antenna_gain_db=10.5)
        ratio = boosted.range_for_snr(20.0) / base.range_for_snr(20.0)
        assert ratio == pytest.approx(2.0, rel=0.01)


class TestRateRange:
    def test_54mbps_shorter_than_6mbps(self):
        budget = LinkBudget()
        std = get_standard("802.11a")
        assert budget.max_distance_for_rate(std, 54) < (
            budget.max_distance_for_rate(std, 6)
        )

    def test_unknown_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkBudget().max_distance_for_rate(get_standard("802.11a"), 33)
