"""Tests for the Bianchi analytical model and its agreement with the DCF
simulator — the core MAC validation of the reproduction."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.bianchi import bianchi_saturation_throughput, bianchi_tau
from repro.mac.dcf import DcfSimulator


class TestFixedPoint:
    def test_single_station(self):
        tau, p = bianchi_tau(1, cw_min=15)
        assert p == 0.0
        assert tau == pytest.approx(2.0 / 17.0)

    def test_tau_decreases_with_n(self):
        taus = [bianchi_tau(n)[0] for n in (2, 10, 50)]
        assert taus == sorted(taus, reverse=True)

    def test_p_increases_with_n(self):
        ps = [bianchi_tau(n)[1] for n in (2, 10, 50)]
        assert ps == sorted(ps)

    def test_consistency(self):
        tau, p = bianchi_tau(20)
        assert p == pytest.approx(1 - (1 - tau) ** 19, abs=1e-9)

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            bianchi_tau(0)


class TestThroughput:
    def test_peak_value_plausible(self):
        s = bianchi_saturation_throughput(10, "802.11a", 54, 1500)
        assert 20.0 < s < 32.0

    def test_declines_with_contention(self):
        s = [bianchi_saturation_throughput(n, "802.11a", 54, 1500)
             for n in (1, 10, 50)]
        assert s[0] > s[1] > s[2]

    def test_rts_cts_flattens_decline(self):
        basic_drop = (bianchi_saturation_throughput(5) -
                      bianchi_saturation_throughput(50))
        rts_drop = (bianchi_saturation_throughput(5, rts_cts=True) -
                    bianchi_saturation_throughput(50, rts_cts=True))
        assert rts_drop < basic_drop

    def test_bigger_payload_more_efficient(self):
        small = bianchi_saturation_throughput(10, payload_bytes=100)
        large = bianchi_saturation_throughput(10, payload_bytes=1500)
        assert large > small


class TestSimulatorAgreement:
    @pytest.mark.parametrize("n", [1, 5, 20])
    def test_simulation_matches_model(self, n):
        """DCF simulation within 10% of Bianchi across station counts."""
        sim = DcfSimulator(n, "802.11a", 54, 1500, rng=11).run(0.5)
        model = bianchi_saturation_throughput(n, "802.11a", 54, 1500)
        assert sim.throughput_mbps == pytest.approx(model, rel=0.10)
