"""Integration tests across the newest layers: PA -> air -> front end ->
decode, aggregation vs the DCF simulator, HWMP on budget-built meshes."""

import numpy as np
import pytest

from repro.mac.aggregation import single_frame_efficiency
from repro.mac.dcf import DcfSimulator
from repro.mesh.hwmp import HwmpRouter
from repro.mesh.network import MeshNetwork
from repro.mesh.spectrum import assign_channels
from repro.mesh.topology import grid_positions
from repro.phy.agc import AutomaticGainControl
from repro.phy.ofdm import OfdmPhy
from repro.phy.quantization import quantize
from repro.phy.sync import synchronise
from repro.power.pa_nonlinear import RappPa, backoff_for_rate


class TestTransmitterToReceiverRealism:
    def test_pa_agc_adc_sync_decode(self):
        """The full analogue story: PA at its rate-appropriate back-off,
        path loss, AGC, 8-bit ADC, sync, decode."""
        rng = np.random.default_rng(77)
        msg = bytes(rng.integers(0, 256, 120, dtype=np.uint8).tolist())
        phy = OfdmPhy(24)
        clean = phy.transmit(msg)
        pa = RappPa()
        backoff = backoff_for_rate(clean, 24, pa)
        assert backoff is not None
        on_air = pa.amplify(clean, backoff_db=backoff)
        # 60 dB of path loss, 150-sample delay, 25 dB SNR at the antenna.
        arrival = 1e-3 * np.concatenate([np.zeros(150, complex), on_air])
        nv = float(np.mean(np.abs(arrival) ** 2)) / 10 ** 2.5
        arrival += np.sqrt(nv / 2) * (
            rng.normal(size=arrival.size) + 1j * rng.normal(size=arrival.size)
        )
        agc = AutomaticGainControl(full_scale=1.0, backoff_db=11.0)
        scaled, gain_db = agc.apply(arrival)
        digitised = quantize(scaled, 8, clip_level=1.0)
        aligned, _ = synchronise(digitised)
        nv_eff = nv * 10 ** (gain_db / 10)
        assert phy.receive(aligned, nv_eff) == msg

    def test_saturated_pa_breaks_the_same_chain(self):
        """Zero back-off at 54 Mbps: the chain that worked above fails —
        distortion, not noise, is the limit."""
        rng = np.random.default_rng(78)
        msg = bytes(rng.integers(0, 256, 120, dtype=np.uint8).tolist())
        phy = OfdmPhy(54)
        hot = RappPa().amplify(phy.transmit(msg), backoff_db=0.0)
        scaled = hot / np.sqrt(np.mean(np.abs(hot) ** 2))
        try:
            decoded = phy.receive(scaled, 1e-5)
        except Exception:
            decoded = None
        assert decoded != msg


class TestMacModelConsistency:
    def test_analytic_single_frame_matches_dcf_sim(self):
        """The aggregation module's single-frame formula agrees with the
        event-driven DCF simulator for one station."""
        analytic = single_frame_efficiency(54.0, 1500)
        simulated = DcfSimulator(1, "802.11a", 54, 1500,
                                 rng=3).run(0.3).throughput_mbps
        assert simulated == pytest.approx(analytic, rel=0.05)


class TestMeshProtocolOnPlannedNetwork:
    def test_hwmp_works_on_channelised_grid(self):
        """Channel planning and route discovery compose: the grid gets a
        conflict-free 8-channel assignment AND discoverable routes."""
        positions = grid_positions(3, 40.0)
        assignment, conflicts = assign_channels(positions, 8,
                                                interference_range_m=90.0)
        assert conflicts == 0
        net = MeshNetwork(positions)
        router = HwmpRouter(net)
        result = router.discover(0, 8)
        assert result.path[0] == 0 and result.path[-1] == 8
        # Every hop of the discovered path is a usable link.
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert net.link_rate_mbps(a, b) is not None
