"""Tests for mesh topology, metrics, network and routing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mesh.metrics import airtime_metric_s, hop_count_metric
from repro.mesh.network import MeshNetwork
from repro.mesh.routing import compare_direct_vs_relay
from repro.mesh.topology import (
    grid_positions,
    line_positions,
    pairwise_distances,
    random_positions,
)


class TestTopology:
    def test_random_positions_in_area(self, rng):
        pos = random_positions(50, 100.0, rng)
        assert pos.shape == (50, 2)
        assert pos.min() >= 0 and pos.max() <= 100.0

    def test_grid_count_and_spacing(self):
        pos = grid_positions(3, 10.0)
        assert pos.shape == (9, 2)
        d = pairwise_distances(pos)
        assert d[0, 1] == pytest.approx(10.0)

    def test_line_positions(self):
        pos = line_positions(4, 25.0)
        assert pairwise_distances(pos)[0, 3] == pytest.approx(75.0)

    def test_distance_matrix_symmetric(self, rng):
        d = pairwise_distances(random_positions(10, 50.0, rng))
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            random_positions(0, 10.0, rng)
        with pytest.raises(ConfigurationError):
            line_positions(1, 5.0)


class TestMetrics:
    def test_airtime_decreases_with_rate(self):
        assert airtime_metric_s(54.0) < airtime_metric_s(6.0)

    def test_airtime_grows_with_error_rate(self):
        assert airtime_metric_s(54.0, 0.5) == pytest.approx(
            2 * airtime_metric_s(54.0, 0.0)
        )

    def test_hop_count_is_constant(self):
        assert hop_count_metric(6.0) == hop_count_metric(54.0) == 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            airtime_metric_s(0.0)


class TestMeshNetwork:
    def test_close_nodes_fast_link(self):
        net = MeshNetwork(line_positions(2, 5.0))
        assert net.link_rate_mbps(0, 1) == 54.0

    def test_distant_nodes_disconnected(self):
        net = MeshNetwork(line_positions(2, 5000.0))
        assert net.link_rate_mbps(0, 1) is None

    def test_multihop_beats_weak_direct_link(self):
        """The paper's claim: two fast hops beat one slow hop."""
        net = MeshNetwork(line_positions(3, 28.0))
        result = compare_direct_vs_relay(net, 0, 2)
        assert result["multihop_wins"]
        assert len(result["routed_path"]) == 3

    def test_direct_link_kept_when_strong(self):
        net = MeshNetwork(line_positions(3, 4.0))
        path = net.best_path(0, 2)
        assert path == [0, 2]

    def test_hop_metric_prefers_fewer_hops(self):
        net = MeshNetwork(line_positions(3, 28.0))
        assert net.best_path(0, 2, metric="hops") == [0, 2]
        assert net.best_path(0, 2, metric="airtime") == [0, 1, 2]

    def test_path_throughput_harmonic(self):
        net = MeshNetwork(line_positions(3, 10.0))
        # Two 54 Mbps hops on a shared medium: 27 Mbps end to end.
        assert net.path_throughput_mbps([0, 1, 2]) == pytest.approx(27.0)

    def test_airtime_per_bit(self):
        net = MeshNetwork(line_positions(2, 10.0))
        assert net.path_airtime_per_bit([0, 1]) == pytest.approx(
            1.0 / 54e6
        )

    def test_disconnected_throughput_zero(self):
        net = MeshNetwork(np.array([[0.0, 0.0], [9000.0, 0.0]]))
        assert net.end_to_end_throughput_mbps(0, 1) == 0.0

    def test_connectivity_check(self):
        assert MeshNetwork(line_positions(4, 20.0)).is_connected()
        assert not MeshNetwork(
            np.array([[0.0, 0.0], [9000.0, 0.0]])
        ).is_connected()

    def test_unknown_metric_rejected(self):
        net = MeshNetwork(line_positions(2, 5.0))
        with pytest.raises(ConfigurationError):
            net.best_path(0, 1, metric="magic")

    def test_bad_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshNetwork(np.zeros((3, 3)))

    def test_average_throughput_positive_when_connected(self):
        net = MeshNetwork(grid_positions(2, 20.0))
        assert net.average_throughput_matrix() > 0
