"""Tests for the 802.11b CCK PHY."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.cck import CckPhy, cck_codeword
from repro.utils.bits import random_bits


class TestCodewords:
    def test_unit_modulus_chips(self):
        cw = cck_codeword(0.3, 1.1, -0.5, 2.0)
        assert np.allclose(np.abs(cw), 1.0)

    def test_last_chip_carries_p1(self):
        cw = cck_codeword(0.7, 0.1, 0.2, 0.3)
        assert np.angle(cw[-1]) == pytest.approx(0.7)

    def test_complementary_pairs_low_cross_correlation(self):
        """Distinct 11 Mbps base codewords correlate well below the peak."""
        phy = CckPhy(11)
        book = phy.codebook
        gram = np.abs(book @ book.conj().T)
        off_peak = gram - 8.0 * np.eye(book.shape[0])
        assert gram.max() == pytest.approx(8.0)
        assert off_peak.max() <= 8.0 - 1.0

    def test_codebook_sizes(self):
        assert CckPhy(11).codebook.shape == (64, 8)
        assert CckPhy(5.5).codebook.shape == (4, 8)


class TestCckPhy:
    @pytest.mark.parametrize("rate", [5.5, 11])
    def test_clean_round_trip(self, rate, rng):
        phy = CckPhy(rate)
        bits = random_bits(phy.bits_per_symbol * 150, rng)
        assert np.array_equal(phy.demodulate(phy.modulate(bits)), bits)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CckPhy(22)

    def test_phase_rotation_invariance(self, rng):
        phy = CckPhy(11)
        bits = random_bits(8 * 100, rng)
        rotated = phy.modulate(bits) * np.exp(-1j * 0.77)
        assert np.array_equal(phy.demodulate(rotated), bits)

    @pytest.mark.parametrize("rate", [5.5, 11])
    def test_moderate_noise(self, rate, rng):
        phy = CckPhy(rate)
        bits = random_bits(phy.bits_per_symbol * 200, rng)
        chips = phy.modulate(bits)
        # 10 dB chip SNR.
        noisy = chips + np.sqrt(0.05) * (
            rng.normal(size=chips.size) + 1j * rng.normal(size=chips.size)
        )
        errors = int((phy.demodulate(noisy) != bits).sum())
        assert errors / bits.size < 0.02

    def test_55_more_robust_than_11(self, rng):
        """Fewer bits per symbol buys noise margin (rate adaptation basis)."""
        results = {}
        for rate in (5.5, 11):
            phy = CckPhy(rate)
            bits = random_bits(phy.bits_per_symbol * 400, rng)
            chips = phy.modulate(bits)
            noisy = chips + np.sqrt(0.25) * (
                rng.normal(size=chips.size) + 1j * rng.normal(size=chips.size)
            )
            results[rate] = (phy.demodulate(noisy) != bits).mean()
        assert results[5.5] <= results[11]

    def test_spectral_efficiency_claim(self):
        """The paper: ~0.5 bps/Hz, a fivefold step over 802.11."""
        eff = CckPhy(11).spectral_efficiency()
        assert eff == pytest.approx(0.55)
        assert 4.0 < eff / 0.1 < 7.0

    def test_partial_symbol_rejected(self):
        with pytest.raises(DemodulationError):
            CckPhy(11).demodulate(np.ones(12, dtype=complex))

    def test_wrong_bit_multiple_rejected(self):
        with pytest.raises(ConfigurationError):
            CckPhy(11).modulate(np.zeros(7, dtype=np.int8))
