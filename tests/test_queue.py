"""Tests for the sharded local-queue execution backend."""

import os

import pytest

from repro.campaign import CampaignSpec, ResultsStore, run_campaign
from repro.campaign.queue import (WorkQueue, WorkUnit, default_shard_size,
                                  shard_points)
from repro.campaign.runner import register_point_kind
from repro.campaign.seeding import point_generator
from repro.errors import ConfigurationError


def _queue_draw_point(params, rng):
    return {"draw": float(rng.integers(0, 1 << 30))}


def _die_once_point(params, rng):
    """Kill the whole worker process on the first visit to ``die_at``.

    ``os._exit`` bypasses every finally/atexit, simulating an OOM kill
    mid-unit; the flag file makes the requeued retry succeed.
    """
    x = int(params["x"])
    if x == int(params.get("die_at", -1)):
        flag = os.path.join(params["flag_dir"], f"died-{x}")
        if not os.path.exists(flag):
            if os.path.isdir(params["flag_dir"]):
                open(flag, "w").close()
            # A missing flag dir means the flag can never be laid down,
            # so the point kills every worker that ever visits it.
            os._exit(13)
    return {"draw": float(rng.integers(0, 1 << 30))}


register_point_kind("test-queue-draw", _queue_draw_point, code_version="1")
register_point_kind("test-die-once", _die_once_point, code_version="1")


def draw_spec(n=8, **overrides):
    fields = dict(name="qdraw", kind="test-queue-draw",
                  factors={"x": list(range(n))}, base_seed=17)
    fields.update(overrides)
    return CampaignSpec(**fields)


def jobs(n):
    return [(f"k{i}", i, {"x": i}) for i in range(n)]


class TestSharding:
    def test_default_shard_size_targets_four_units_per_worker(self):
        assert default_shard_size(64, 4) == 4  # 16 units for 4 workers
        assert default_shard_size(3, 8) == 1
        assert default_shard_size(100, 1) == 25
        assert default_shard_size(0, 2) == 1

    def test_shard_points_preserves_grid_order(self):
        units = shard_points(jobs(7), 3)
        assert [u.unit_id for u in units] == [0, 1, 2]
        assert [len(u.jobs) for u in units] == [3, 3, 1]
        flat = [job for u in units for job in u.jobs]
        assert flat == jobs(7)

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            shard_points(jobs(4), 0)


class TestWorkQueue:
    def test_lease_record_ack_lifecycle(self):
        wq = WorkQueue(shard_points(jobs(4), 2))
        assert wq.depth == 2 and not wq.done()
        wq.lease(0, pid=101)
        wq.lease(1, pid=102)
        assert wq.depth == 0
        for key, _, _ in jobs(4):
            wq.record(0 if key in ("k0", "k1") else 1, key)
        wq.ack(0, pid=101)
        wq.ack(1, pid=102)
        assert wq.done()
        assert (wq.n_leases, wq.n_acks, wq.n_requeued) == (2, 2, 0)

    def test_stale_ack_from_dead_pid_is_ignored(self):
        """A dead worker's last flushed ack must not release the lease
        the requeued unit's *new* owner holds."""
        wq = WorkQueue(shard_points(jobs(2), 2))
        wq.lease(0, pid=101)
        wq.requeue_for(101)  # 101 died; unit 0 is pending again
        wq.lease(0, pid=102)
        wq.ack(0, pid=101)  # stale: arrives after the requeue
        assert not wq.done()
        assert wq.held_by(102) == 1
        wq.record(0, "k0")
        wq.record(0, "k1")
        wq.ack(0, pid=102)
        assert wq.done()

    def test_requeue_keeps_id_and_unfinished_jobs_only(self):
        wq = WorkQueue(shard_points(jobs(4), 4))
        wq.lease(0, pid=101)
        wq.record(0, "k0")
        wq.record(0, "k2")
        reclaimed = wq.requeue_for(101)
        assert len(reclaimed) == 1
        assert reclaimed[0].unit_id == 0
        assert [job[0] for job in reclaimed[0].jobs] == ["k1", "k3"]
        assert wq.n_requeued == 1
        assert not wq.done()  # the reclaimed unit is pending again

    def test_fully_reported_unit_retires_on_death(self):
        """A worker that dies after its last record but before the ack
        loses nothing: the unit retires as acked, not requeued."""
        wq = WorkQueue(shard_points(jobs(2), 2))
        wq.lease(0, pid=101)
        wq.record(0, "k0")
        wq.record(0, "k1")
        assert wq.requeue_for(101) == []
        assert wq.n_acks == 1 and wq.n_requeued == 0

    def test_requeue_ignores_other_pids(self):
        wq = WorkQueue(shard_points(jobs(2), 1))
        wq.lease(0, pid=101)
        wq.lease(1, pid=102)
        assert wq.requeue_for(999) == []
        assert wq.n_requeued == 0


class TestLocalQueueBackend:
    def test_bit_identical_to_serial_and_pool(self, tmp_path):
        spec = draw_spec()
        serial = run_campaign(spec, store=ResultsStore(tmp_path / "a"))
        queued = run_campaign(spec, workers=2, backend="local-queue",
                              store=ResultsStore(tmp_path / "b"))
        pooled = run_campaign(spec, workers=2, backend="pool",
                              store=ResultsStore(tmp_path / "c"))
        assert (serial.metrics_by_index() == queued.metrics_by_index()
                == pooled.metrics_by_index())
        # Queue points really ran out of process.
        assert os.getpid() not in {r["worker"] for r in queued.records}

    def test_queue_stats_surface_in_extras(self, tmp_path):
        result = run_campaign(draw_spec(), workers=2,
                              backend="local-queue", shard_size=2,
                              store=ResultsStore(tmp_path))
        stats = result.extras["queue"]
        assert stats["backend"] == "local-queue"
        assert stats["n_units"] == 4  # 8 points / shard_size 2
        assert stats["shard_size"] == 2
        assert stats["n_leases"] == stats["n_acks"] == 4
        assert stats["n_requeued"] == 0
        assert stats["n_lost"] == 0

    def test_spec_backend_knob_selects_queue(self, tmp_path):
        result = run_campaign(draw_spec(backend="local-queue"),
                              workers=2, store=ResultsStore(tmp_path))
        assert result.extras["queue"]["backend"] == "local-queue"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_campaign(draw_spec(), workers=2, backend="slurm",
                         store=ResultsStore(tmp_path))

    def test_single_worker_queue_still_completes(self, tmp_path):
        result = run_campaign(draw_spec(n=3), workers=1,
                              backend="local-queue",
                              store=ResultsStore(tmp_path))
        assert result.n_executed == 3
        assert all(r["outcome"] == "ok" for r in result.records)


class TestWorkerDeath:
    def test_dead_worker_requeues_and_respawns(self, tmp_path):
        """A worker OOM-killed mid-unit forfeits its lease; the unit's
        unfinished points re-run on a replacement, and the finished
        grid is still bit-identical to an undisturbed run."""
        flag_dir = tmp_path / "flags"
        flag_dir.mkdir()
        spec = CampaignSpec(
            name="mortal", kind="test-die-once",
            factors={"x": list(range(8))},
            fixed={"die_at": 3, "flag_dir": str(flag_dir)},
            base_seed=23,
        )
        result = run_campaign(spec, workers=2, backend="local-queue",
                              shard_size=2,
                              store=ResultsStore(tmp_path / "r"))
        assert all(r["outcome"] == "ok" for r in result.records)
        stats = result.extras["queue"]
        assert stats["n_requeued"] >= 1
        assert stats["n_respawns"] >= 1
        assert stats["n_lost"] == 0
        # The re-run point drew from its usual per-point substream.
        by_x = {r["params"]["x"]: r for r in result.records}
        expected = float(point_generator(23, by_x[3]["index"])
                         .integers(0, 1 << 30))
        assert by_x[3]["metrics"]["draw"] == expected

    def test_all_workers_dead_synthesizes_failures(self, tmp_path):
        """When every worker (and replacement) dies on the same point,
        the sweep still returns a complete record set: the undeliverable
        points come back as structured failures, not holes."""
        flag_dir = tmp_path / "flags"  # never created: dies every time
        spec = CampaignSpec(
            name="doomed", kind="test-die-once",
            factors={"x": [0, 1]},
            fixed={"die_at": 1, "flag_dir": str(flag_dir)},
            base_seed=29,
        )
        result = run_campaign(spec, workers=1, backend="local-queue",
                              shard_size=1,
                              store=ResultsStore(tmp_path / "r"))
        by_x = {r["params"]["x"]: r for r in result.records}
        assert by_x[0]["outcome"] == "ok"
        assert by_x[1]["outcome"] == "error"
        assert "work unit lost" in by_x[1]["error"]
        assert result.extras["queue"]["n_lost"] == 1
