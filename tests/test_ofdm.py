"""Tests for the 802.11a/g OFDM transceiver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DemodulationError
from repro.phy.ofdm import (
    DATA_INDICES,
    LTF_SEQUENCE,
    OFDM_RATES,
    OfdmPhy,
    long_training_field,
    pilot_polarity,
    short_training_field,
)

ALL_RATES = sorted(OFDM_RATES)


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(99)
    return bytes(rng.integers(0, 256, 120, dtype=np.uint8).tolist())


class TestGeometry:
    def test_48_data_subcarriers(self):
        assert DATA_INDICES.size == 48

    def test_pilots_not_in_data(self):
        assert not set(DATA_INDICES.tolist()) & {-21, -7, 7, 21}

    def test_ltf_covers_52_carriers(self):
        assert len(LTF_SEQUENCE) == 52
        assert set(LTF_SEQUENCE.values()) <= {1.0, -1.0}

    def test_rate_parameters(self):
        # Table 78 spot checks.
        assert OFDM_RATES[6].n_dbps == 24
        assert OFDM_RATES[54].n_dbps == 216
        assert OFDM_RATES[48].n_cbps == 288


class TestTrainingFields:
    def test_stf_length(self):
        assert short_training_field().size == 160

    def test_stf_is_periodic_16(self):
        stf = short_training_field()
        assert np.allclose(stf[:16], stf[16:32], atol=1e-12)

    def test_ltf_length_and_cp(self):
        ltf = long_training_field()
        assert ltf.size == 160
        # The 32-sample CP equals the tail of each 64-sample symbol, and
        # the two training symbols are identical.
        assert np.allclose(ltf[:32], ltf[64:96])
        assert np.allclose(ltf[32:96], ltf[96:160])

    def test_unit_power(self):
        assert np.mean(np.abs(long_training_field()) ** 2) == pytest.approx(
            1.0, rel=0.05
        )

    def test_pilot_polarity_is_127_periodic(self):
        assert pilot_polarity(5) == pilot_polarity(5 + 127)
        assert pilot_polarity(0) == 1.0


class TestRoundTrip:
    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_clean(self, rate, message):
        phy = OfdmPhy(rate)
        assert phy.receive(phy.transmit(message), 1e-10) == message

    def test_empty_psdu_roundtrip(self):
        phy = OfdmPhy(6)
        assert phy.receive(phy.transmit(b""), 1e-10) == b""

    def test_single_byte(self):
        phy = OfdmPhy(54)
        assert phy.receive(phy.transmit(b"Z"), 1e-10) == b"Z"

    @pytest.mark.parametrize("rate", [6, 24, 54])
    def test_awgn_at_comfortable_snr(self, rate, message, rng):
        phy = OfdmPhy(rate)
        wave = phy.transmit(message)
        nv = 10 ** (-30 / 10)
        noisy = wave + np.sqrt(nv / 2) * (
            rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)
        )
        assert phy.receive(noisy, nv) == message

    def test_multipath_with_channel_estimation(self, message, rng):
        phy = OfdmPhy(24)
        wave = phy.transmit(message)
        taps = np.array([0.85, 0.4 * np.exp(1j * 0.9), 0.25 * np.exp(-1j)])
        rx = np.convolve(wave, taps)[: wave.size]
        nv = 1e-3
        rx = rx + np.sqrt(nv / 2) * (
            rng.normal(size=rx.size) + 1j * rng.normal(size=rx.size)
        )
        assert phy.receive(rx, nv) == message

    def test_signal_field_carries_rate_and_length(self, message):
        phy = OfdmPhy(36)
        _, details = phy.receive(phy.transmit(message), 1e-10,
                                 return_details=True)
        assert details["advertised_rate_mbps"] == 36
        assert details["psdu_length"] == len(message)

    def test_receiver_rejects_wrong_rate(self, message):
        wave = OfdmPhy(12).transmit(message)
        with pytest.raises(DemodulationError):
            OfdmPhy(54).receive(wave, 1e-10)


class TestFraming:
    def test_duration_formula(self):
        phy = OfdmPhy(54)
        # 20 us preamble+SIGNAL... : preamble 16us + SIGNAL 4us + data.
        n_sym = phy.n_symbols(1500)
        assert phy.frame_duration_s(1500) == pytest.approx(
            16e-6 + 4e-6 + n_sym * 4e-6
        )

    def test_faster_rate_shorter_frame(self):
        d6 = OfdmPhy(6).frame_duration_s(500)
        d54 = OfdmPhy(54).frame_duration_s(500)
        assert d54 < d6

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmPhy(33)

    def test_truncated_waveform_rejected(self, message):
        phy = OfdmPhy(6)
        wave = phy.transmit(message)
        with pytest.raises(DemodulationError):
            phy.receive(wave[: wave.size // 2], 1e-10)

    def test_spectral_efficiency_claim(self):
        """The paper: 2.7 bps/Hz, another ~fivefold step."""
        eff = OfdmPhy(54).spectral_efficiency()
        assert eff == pytest.approx(2.7)
        assert 4.0 < eff / 0.55 < 6.0

    def test_unit_power_waveform(self, message):
        wave = OfdmPhy(24).transmit(message)
        assert np.mean(np.abs(wave) ** 2) == pytest.approx(1.0, rel=0.15)
