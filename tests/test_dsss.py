"""Tests for the 802.11 Barker DSSS PHY."""

import numpy as np
import pytest

from repro.constants import FCC_PROCESSING_GAIN_DB
from repro.errors import ConfigurationError, DemodulationError
from repro.phy.dsss import (
    BARKER,
    CHIPS_PER_SYMBOL,
    DsssPhy,
    measure_processing_gain,
    processing_gain_db,
)
from repro.utils.bits import random_bits


class TestBarker:
    def test_length_eleven(self):
        assert CHIPS_PER_SYMBOL == 11

    def test_ideal_autocorrelation(self):
        """Barker codes have off-peak aperiodic autocorrelation <= 1."""
        for shift in range(1, 11):
            corr = np.sum(BARKER[: 11 - shift] * BARKER[shift:])
            assert abs(corr) <= 1

    def test_processing_gain_exceeds_fcc_mandate(self):
        assert processing_gain_db() >= FCC_PROCESSING_GAIN_DB

    def test_measured_gain_matches_theory(self, rng):
        measured = measure_processing_gain(n_symbols=4000, rng=rng)
        assert measured == pytest.approx(processing_gain_db(), abs=0.8)


class TestDsssPhy:
    @pytest.mark.parametrize("rate", [1, 2])
    def test_clean_round_trip(self, rate, rng):
        phy = DsssPhy(rate)
        bits = random_bits(rate * 300, rng)
        assert np.array_equal(phy.demodulate(phy.modulate(bits)), bits)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DsssPhy(5)

    @pytest.mark.parametrize("rate", [1, 2])
    def test_chip_count(self, rate, rng):
        phy = DsssPhy(rate)
        bits = random_bits(rate * 100, rng)
        assert phy.modulate(bits).size == phy.n_chips(bits.size)

    def test_unit_chip_power(self, rng):
        chips = DsssPhy(1).modulate(random_bits(50, rng))
        assert np.mean(np.abs(chips) ** 2) == pytest.approx(1.0)

    def test_phase_rotation_invariance(self, rng):
        """Differential detection shrugs off an unknown carrier phase."""
        phy = DsssPhy(2)
        bits = random_bits(200, rng)
        rotated = phy.modulate(bits) * np.exp(1j * 1.234)
        assert np.array_equal(phy.demodulate(rotated), bits)

    def test_noise_resilience_at_0db_chip_snr(self, rng):
        """Processing gain makes 0 dB chip SNR an easy operating point."""
        phy = DsssPhy(1)
        bits = random_bits(500, rng)
        chips = phy.modulate(bits)
        noisy = chips + np.sqrt(0.5) * (
            rng.normal(size=chips.size) + 1j * rng.normal(size=chips.size)
        )
        errors = int((phy.demodulate(noisy) != bits).sum())
        assert errors / bits.size < 0.01

    def test_spectral_efficiency_claim(self):
        """The paper: 0.1 bps/Hz at 2 Mbps in 20 MHz."""
        assert DsssPhy(2).spectral_efficiency() == pytest.approx(0.1)

    def test_partial_chip_stream_rejected(self):
        with pytest.raises(DemodulationError):
            DsssPhy(1).despread(np.ones(15, dtype=complex))

    def test_wrong_bit_multiple_rejected(self):
        with pytest.raises(ConfigurationError):
            DsssPhy(2).modulate(np.zeros(3, dtype=np.int8))
