"""Tests for the time-varying (Doppler) channel."""

import numpy as np
import pytest

from repro.channel.timevarying import TimeVaryingChannel
from repro.errors import ConfigurationError, DemodulationError
from repro.phy.ofdm import OfdmPhy


class TestStaticLimit:
    def test_zero_doppler_taps_constant(self):
        ch = TimeVaryingChannel(1, 1, 0.0, 20e6, doppler_hz=0.0, rng=1)
        gains = ch.tap_processes(500)
        assert np.allclose(gains[0, 0, 0], gains[0, 0, 0, 0])

    def test_zero_doppler_matches_flat_multiplication(self, rng):
        ch = TimeVaryingChannel(1, 1, 0.0, 20e6, doppler_hz=0.0, rng=2)
        x = np.exp(1j * rng.uniform(0, 6.28, 300))[None, :]
        gains = ch.tap_processes(300)
        y = ch.apply(x, gains)
        assert np.allclose(y, gains[0, 0, 0, 0] * x)

    def test_infinite_coherence_when_static(self):
        ch = TimeVaryingChannel(1, 1, 0.0, 20e6, doppler_hz=0.0)
        assert ch.coherence_time_s() == float("inf")


class TestMobility:
    def test_taps_decorrelate(self):
        ch = TimeVaryingChannel(1, 1, 0.0, 20e6, doppler_hz=5000.0, rng=3)
        g = ch.tap_processes(40000)[0, 0, 0]
        early = g[:1000]
        late = g[-1000:]
        corr = abs(np.vdot(early, late)) / (
            np.linalg.norm(early) * np.linalg.norm(late)
        )
        assert corr < 0.9

    def test_coherence_time_formula(self):
        ch = TimeVaryingChannel(1, 1, 0.0, 20e6, doppler_hz=100.0)
        assert ch.coherence_time_s() == pytest.approx(0.00423)

    def test_high_doppler_breaks_long_ofdm_packets(self):
        """Channel estimate staleness: a packet longer than the coherence
        time fails, the same packet with a static channel survives."""
        rng = np.random.default_rng(11)
        msg = bytes(rng.integers(0, 256, 700, dtype=np.uint8).tolist())
        phy = OfdmPhy(24)
        wave = phy.transmit(msg)[None, :]
        nv = 10 ** (-28 / 10)
        outcomes = {}
        for doppler in (0.0, 2500.0):
            fails = 0
            for trial in range(4):
                ch = TimeVaryingChannel(1, 1, 50e-9, 20e6,
                                        doppler_hz=doppler, rng=50 + trial)
                y = ch.apply(wave)
                y = y + np.sqrt(nv / 2) * (
                    rng.normal(size=y.shape) + 1j * rng.normal(size=y.shape)
                )
                try:
                    fails += phy.receive(y.ravel(), nv) != msg
                except DemodulationError:
                    fails += 1
            outcomes[doppler] = fails
        assert outcomes[0.0] == 0
        assert outcomes[2500.0] >= 3

    def test_output_shape(self, rng):
        ch = TimeVaryingChannel(2, 2, 50e-9, 20e6, doppler_hz=10.0, rng=4)
        y = ch.apply(np.ones((2, 200), complex))
        assert y.shape == (2, 200)


class TestValidation:
    def test_negative_doppler_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeVaryingChannel(1, 1, 0.0, 20e6, doppler_hz=-1.0)

    def test_stream_mismatch_rejected(self):
        ch = TimeVaryingChannel(1, 2, 0.0, 20e6)
        with pytest.raises(ConfigurationError):
            ch.apply(np.ones((3, 10), complex))
