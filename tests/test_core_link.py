"""Tests for the link-level simulation engine."""

import pytest

from repro.core.link import LinkResult, LinkSimulator
from repro.errors import ConfigurationError


class TestConfiguration:
    @pytest.mark.parametrize("phy", [
        "dsss-1", "dsss-2", "cck-5.5", "cck-11", "fhss-1",
        "ofdm-6", "ofdm-54", "ht-0", "ht-8", "ht40-3",
    ])
    def test_all_phys_construct(self, phy):
        sim = LinkSimulator(phy, "awgn", rng=0)
        assert sim.rate_mbps > 0

    def test_unknown_phy_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSimulator("wimax-10")

    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSimulator("ofdm-6", "tgn-Z")

    def test_ht_stream_count(self):
        sim = LinkSimulator("ht-12", rng=0)
        assert sim.n_tx == 2


class TestAwgnRuns:
    @pytest.mark.parametrize("phy,snr", [
        ("dsss-1", 8.0), ("cck-11", 15.0), ("ofdm-24", 24.0), ("ht-0", 10.0),
    ])
    def test_high_snr_error_free(self, phy, snr):
        result = LinkSimulator(phy, "awgn", rng=1).run(snr, 15, 60)
        assert result.per == 0.0
        assert result.ber == 0.0

    def test_low_snr_fails(self):
        result = LinkSimulator("ofdm-54", "awgn", rng=2).run(5.0, 10, 60)
        assert result.per == 1.0

    def test_waterfall_monotone_overall(self):
        sim = LinkSimulator("ofdm-24", "awgn", rng=3)
        results = sim.waterfall([10.0, 30.0], n_packets=15, payload_bytes=60)
        assert results[0].per >= results[-1].per

    def test_result_bookkeeping(self):
        result = LinkSimulator("ofdm-6", "awgn", rng=4).run(20.0, 5, 40)
        assert result.n_packets == 5
        assert result.n_bits == 5 * 40 * 8
        assert result.goodput_mbps == pytest.approx(
            result.rate_mbps * (1 - result.per)
        )


class TestFadingRuns:
    def test_rayleigh_worse_than_awgn(self):
        """Fading is the whole reason diversity matters."""
        awgn = LinkSimulator("ofdm-24", "awgn", rng=5).run(24.0, 25, 60)
        fade = LinkSimulator("ofdm-24", "rayleigh", rng=5).run(24.0, 25, 60)
        assert fade.per > awgn.per

    def test_tgn_channel_runs(self):
        result = LinkSimulator("ofdm-6", "tgn-C", rng=6).run(20.0, 10, 60)
        assert 0.0 <= result.per <= 1.0

    def test_ht_rayleigh_with_rx_diversity(self):
        r2 = LinkSimulator("ht-0", "rayleigh", n_rx=2, rng=7).run(15.0, 20, 60)
        r1 = LinkSimulator("ht-0", "rayleigh", n_rx=1, rng=7).run(15.0, 20, 60)
        assert r2.per <= r1.per


class TestSnrForPer:
    def test_finds_waterfall_region(self):
        sim = LinkSimulator("ofdm-12", "awgn", rng=8)
        snr = sim.snr_for_per(0.5, lo_db=0.0, hi_db=20.0,
                              n_packets=20, payload_bytes=40)
        assert 0.0 < snr < 15.0

    def test_impossible_target_raises(self):
        sim = LinkSimulator("ofdm-12", "awgn", rng=9)
        with pytest.raises(ConfigurationError):
            sim.snr_for_per(0.5, lo_db=-30.0, hi_db=-20.0,
                            n_packets=10, payload_bytes=40)

    def test_invalid_target_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSimulator("ofdm-6", rng=10).snr_for_per(1.5)

    def test_low_edge_returned_without_bisection(self):
        """When the target PER already holds at lo_db the probe must
        return lo_db itself after a single run."""
        sim = LinkSimulator("ofdm-12", "awgn", rng=12)
        calls = []
        original = sim.run

        def counting_run(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        sim.run = counting_run
        snr = sim.snr_for_per(0.5, lo_db=30.0, hi_db=40.0,
                              n_packets=10, payload_bytes=40)
        assert snr == 30.0
        assert len(calls) == 1


class TestValidation:
    def test_zero_packets_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSimulator("ofdm-6", rng=11).run(10.0, 0, 100)

    def test_nan_snr_rejected(self):
        with pytest.raises(ConfigurationError, match="snr_db must be finite"):
            LinkSimulator("ofdm-6", rng=11).run(float("nan"), 10, 100)

    def test_non_numeric_snr_rejected(self):
        with pytest.raises(ConfigurationError, match="real number"):
            LinkSimulator("ofdm-6", rng=11).run("loud", 10, 100)

    @pytest.mark.parametrize("payload", [0, -4, 2.5])
    def test_bad_payload_rejected(self, payload):
        with pytest.raises(ConfigurationError, match="payload_bytes"):
            LinkSimulator("ofdm-6", rng=11).run(10.0, 10, payload)

    def test_empty_waterfall_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            LinkSimulator("ofdm-6", rng=11).waterfall([])

    def test_nan_in_waterfall_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            LinkSimulator("ofdm-6", rng=11).waterfall(
                [10.0, float("nan"), 20.0])

    def test_zero_trial_result_is_nan_not_zero(self):
        """No data must not masquerade as an error-free measurement."""
        import math
        r = LinkResult("x", "awgn", 0.0, 0, 0, 0, 0, 10, 6.0)
        assert math.isnan(r.per)
        assert math.isnan(r.ber)

    def test_per_ci_brackets_estimate(self):
        result = LinkSimulator("cck-5.5", "awgn", rng=13).run(2.0, 30, 25)
        lo, hi = result.per_ci()
        assert 0.0 <= lo <= result.per <= hi <= 1.0
        cp_lo, cp_hi = result.per_ci(method="clopper-pearson")
        assert cp_lo <= result.per <= cp_hi
