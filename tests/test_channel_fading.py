"""Tests for repro.channel.fading."""

import numpy as np
import pytest

from repro.channel.fading import jakes_process, rayleigh_fading, ricean_fading
from repro.errors import ConfigurationError


class TestRayleigh:
    def test_unit_power(self, rng):
        h = rayleigh_fading(200000, rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_shape_tuple(self, rng):
        assert rayleigh_fading((4, 5), rng).shape == (4, 5)

    def test_envelope_is_rayleigh(self, rng):
        """Mean envelope of unit-power Rayleigh is sqrt(pi)/2."""
        h = rayleigh_fading(200000, rng)
        assert np.mean(np.abs(h)) == pytest.approx(np.sqrt(np.pi) / 2,
                                                   rel=0.02)


class TestRicean:
    def test_unit_power(self, rng):
        h = ricean_fading(200000, 6.0, rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_high_k_approaches_los(self, rng):
        h = ricean_fading(10000, 30.0, rng)
        assert np.std(np.abs(h)) < 0.1

    def test_low_k_approaches_rayleigh(self, rng):
        h = ricean_fading(100000, -20.0, rng)
        assert np.mean(np.abs(h)) == pytest.approx(np.sqrt(np.pi) / 2,
                                                   rel=0.05)


class TestJakes:
    def test_unit_power(self, rng):
        powers = [np.mean(np.abs(jakes_process(3000, 20.0, 1000.0,
                                               rng=rng)) ** 2)
                  for _ in range(30)]
        assert np.mean(powers) == pytest.approx(1.0, rel=0.1)

    def test_time_correlation_decays(self, rng):
        h = jakes_process(20000, 50.0, 10000.0, rng=rng)
        corr0 = np.abs(np.mean(h[:-1000] * np.conj(h[:-1000])))
        corr_far = np.abs(np.mean(h[:-1000] * np.conj(h[1000:])))
        assert corr_far < corr0

    def test_zero_doppler_is_static(self, rng):
        h = jakes_process(100, 0.0, 1000.0, rng=rng)
        assert np.allclose(h, h[0])

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            jakes_process(10, -1.0, 100.0, rng=rng)
