"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic RNG so every test run is reproducible."""
    return np.random.default_rng(0xDA7E2005)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic generators."""
    def make(seed=0):
        return np.random.default_rng(seed)
    return make
