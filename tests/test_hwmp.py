"""Tests for HWMP-style distributed route discovery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mesh.hwmp import HwmpRouter
from repro.mesh.network import MeshNetwork
from repro.mesh.topology import grid_positions, line_positions


@pytest.fixture(scope="module")
def line_router():
    return HwmpRouter(MeshNetwork(line_positions(4, 28.0)))


class TestDiscovery:
    def test_finds_multihop_route(self, line_router):
        result = line_router.discover(0, 3)
        assert result.path[0] == 0
        assert result.path[-1] == 3
        assert result.hop_count >= 2

    def test_matches_centralised_dijkstra(self):
        """Distributed flooding converges to the same airtime-optimal path
        as the omniscient graph search."""
        net = MeshNetwork(line_positions(4, 28.0))
        router = HwmpRouter(net)
        for src, dst in [(0, 3), (1, 3), (3, 0)]:
            flooded = router.discover(src, dst)
            central = net.best_path(src, dst, metric="airtime")
            assert flooded.path == central, (src, dst)

    def test_metric_equals_path_sum(self):
        net = MeshNetwork(line_positions(3, 28.0))
        result = HwmpRouter(net).discover(0, 2)
        expected = sum(
            net.graph.edges[a, b]["airtime_s"]
            for a, b in zip(result.path[:-1], result.path[1:])
        )
        assert result.metric_s == pytest.approx(expected)

    def test_grid_topology(self):
        net = MeshNetwork(grid_positions(3, 40.0))
        result = HwmpRouter(net).discover(0, 8)
        assert result.path[0] == 0 and result.path[-1] == 8

    def test_unreachable_raises(self):
        net = MeshNetwork(np.array([[0.0, 0.0], [5000.0, 0.0]]))
        with pytest.raises(SimulationError):
            HwmpRouter(net).discover(0, 1)

    def test_same_node_rejected(self, line_router):
        with pytest.raises(ConfigurationError):
            line_router.discover(1, 1)


class TestProtocolBehaviour:
    def test_discovery_time_scales_with_hops(self, line_router):
        near = line_router.discover(0, 1)
        far = line_router.discover(0, 3)
        assert far.discovery_time_s > near.discovery_time_s

    def test_broadcast_count_bounded(self):
        """Sequence numbers suppress re-floods: broadcasts stay polynomial
        in the node count."""
        net = MeshNetwork(grid_positions(3, 40.0))
        result = HwmpRouter(net).discover(0, 8)
        assert result.preq_broadcasts <= 5 * net.n_nodes ** 2

    def test_discover_all_from(self):
        net = MeshNetwork(line_positions(4, 28.0))
        routes = HwmpRouter(net).discover_all_from(0)
        assert set(routes) == {1, 2, 3}
        assert all(r.path[0] == 0 for r in routes.values())

    def test_invalid_hop_delay_rejected(self):
        net = MeshNetwork(line_positions(2, 10.0))
        with pytest.raises(ConfigurationError):
            HwmpRouter(net, hop_delay_s=0.0)
