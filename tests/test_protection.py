"""Tests for 802.11g ERP protection."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.protection import (
    coexistence_study,
    protected_exchange_duration_s,
    protected_throughput_mbps,
)


class TestDurations:
    def test_protection_adds_time(self):
        bare = protected_exchange_duration_s(1500, 54.0, "none")
        cts = protected_exchange_duration_s(1500, 54.0, "cts-to-self")
        rts = protected_exchange_duration_s(1500, 54.0, "rts-cts")
        assert bare < cts < rts

    def test_slower_protection_rate_costs_more(self):
        fast = protected_exchange_duration_s(1500, 54.0, "cts-to-self", 11.0)
        slow = protected_exchange_duration_s(1500, 54.0, "cts-to-self", 1.0)
        assert slow > fast

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            protected_exchange_duration_s(1500, 54.0, "magic")


class TestThroughput:
    def test_protection_tax_visible(self):
        """One legacy client costs a g cell a noticeable slice."""
        pure = protected_throughput_mbps(mechanism="none")
        mixed = protected_throughput_mbps(mechanism="cts-to-self",
                                          protection_rate_mbps=1.0)
        assert mixed < 0.85 * pure

    def test_protected_g_still_beats_pure_b(self):
        """Even protected, OFDM at 54 Mbps outruns 11 Mbps CCK — why g
        shipped despite the tax."""
        rows = dict(coexistence_study())
        assert rows["mixed cell, RTS/CTS @1 Mbps"] > (
            rows["pure 802.11b @11 Mbps"]
        )

    def test_study_ordering(self):
        rows = coexistence_study()
        values = [v for _, v in rows[:4]]
        # none > cts@11 > cts@1 > rts@1
        assert values == sorted(values, reverse=True)

    def test_pure_g_matches_expected(self):
        assert protected_throughput_mbps(mechanism="none") == pytest.approx(
            29.0, abs=2.0
        )
