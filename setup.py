"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-build-isolation`` (and
plain ``python setup.py develop``) work with the legacy code path.
"""

from setuptools import setup

setup()
